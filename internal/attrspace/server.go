// Package attrspace implements the TDP attribute space servers and
// their client. A LASS (Local Attribute Space Server) runs on every
// execution host; the CASS (Central Attribute Space Server) runs on
// the host with the tool front-end (paper §2.1, Figure 2). Both are
// the same server — the distinction is purely where they run and who
// connects — so one implementation serves both roles.
//
// The protocol is framed wire.Messages:
//
//	client → server:
//	  HELLO   context=<name>                 join a context
//	  PUT     id=<n> attr=<a> value=<v>      store, ack with OK
//	  MPUT    id=<n> n=<c> k0=.. v0=.. k1=.. store c pairs in order, one OK
//	  GET     id=<n> attr=<a>                blocking get, reply VALUE
//	  TRYGET  id=<n> attr=<a>                non-blocking, VALUE or NOTFOUND
//	  DELETE  id=<n> attr=<a>                remove, ack with OK
//	  SNAP    id=<n> [seqs=1]                dump all attributes; seqs=1
//	                                         adds per-entry s<i> + context seq
//	  SUB     id=<n>                         start event push, ack with OK
//	  STATS   id=<n> [scope=tree]            dump daemon telemetry (no HELLO needed);
//	                                         scope=tree merges in child snapshots
//	  EXIT                                   leave context and disconnect
//
//	client → LASS (global forwarding; LASS relays to its CASS):
//	  GPUT    id=<n> attr=<a> value=<v>      global put, write-through
//	  GMPUT   id=<n> n=<c> k0=.. v0=..       global batched put
//	  GGET    id=<n> attr=<a>                blocking global get (cache first)
//	  GTRYGET id=<n> attr=<a>                non-blocking global get (cache first)
//	  GDEL    id=<n> attr=<a>                global delete, write-through
//	  GSNAP   id=<n>                         global snapshot (never cached)
//
//	server → client:
//	  OK      id=<n> [seq=<s>]
//	  VALUE   id=<n> attr=<a> value=<v> [seq=<s>]
//	  NOTFOUND id=<n> attr=<a>
//	  SNAPV   id=<n> n=<count> k0=.. v0=.. k1=..
//	  STATSV  id=<n> daemon=<name> json=<telemetry snapshot>
//	  ERROR   id=<n> error=<text>
//	  EVENT   attr=<a> value=<v> op=<put|delete|destroy> seq=<n> [lost=<d>]
//	  CLOSE   reason=<r>                     GOAWAY: server draining; no new
//	                                         requests, in-flight replies land
//
// Every reply carries the request id, so a client may keep many
// blocking GETs outstanding on one connection — this is what makes the
// paper's tdp_async_get natural to implement. MPUT batches a burst of
// puts (a tool daemon publishing its startup attributes) into one
// round trip; servers that predate it answer with an unknown-verb
// ERROR and clients fall back to individual PUTs.
//
// Mutating acks and VALUE replies carry the per-context sequence
// number of the write they report (seq), which is what versions the
// LASS read cache. EVENT may carry lost=<d>: the number of updates the
// server's fan-out ring had to drop for this subscriber since the last
// event — a nonzero delta tells a mirroring consumer (the cache) that
// its picture has a gap and must be flushed. The G* verbs are answered
// by a LASS started with an upstream CASS (see EnableGlobalCache):
// reads are served from a local cache kept coherent by the LASS's own
// subscription to the CASS, writes go through to the CASS and update
// the cache with the CASS-assigned seq before the ack, so a client
// reads its own global writes through the same LASS.
//
// Requests may additionally carry the reserved _tid/_sid span-tracing
// fields (wire.FieldTraceID); the server then records its share of the
// operation in its span log under the caller's trace ID, which is how
// one Put can be followed front-end → CASS → proxy → LASS.
package attrspace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/attr"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// serverVerbs are the request verbs the server counts and times; one
// counter "attrspace.ops.<verb>" and one latency histogram
// "attrspace.latency.<verb>" exist per verb.
var serverVerbs = []string{"hello", "put", "mput", "get", "tryget", "delete", "snap", "snapd", "sub",
	"stats", "ping", "gput", "gmput", "gget", "gtryget", "gdel", "gsnap", "gsnapm", "gctxs",
	"cput", "cmput", "cget", "cdel", "csnap", "cctxs"}

// defaultServerCaps are the transport capabilities a server grants
// when the client offers them; see Server.SetCaps. CapShm is listed
// but additionally gated per connection: it is only granted across a
// provably same-host transport (see the HELLO handler).
var defaultServerCaps = []string{wire.CapMux, wire.CapSnapd, wire.CapChunk, wire.CapPing, wire.CapCtxOp, wire.CapByteWin, wire.CapShm}

// verbMetrics caches one verb's hot-path metric handles.
type verbMetrics struct {
	ops *telemetry.Counter
	lat *telemetry.Histogram
}

// telemetryHandles is an immutable snapshot of the server's telemetry
// wiring. The request path loads it through one atomic pointer read —
// no mutex — so concurrent requests never contend on observation, and
// SetTelemetry swaps the whole bundle at once (registry, tracer, and
// the per-verb handles derived from the registry stay consistent).
type telemetryHandles struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	verbs  map[string]verbMetrics // read-only after construction
	gConns *telemetry.Gauge

	// Event fan-out accounting (the asynchronous subscriber path).
	evPushed    *telemetry.Counter // events written to subscribers
	evLost      *telemetry.Counter // updates dropped on ring overflow
	evCoalesced *telemetry.Counter // updates coalesced-to-latest on overflow
	evDepth     *telemetry.Gauge   // last observed ring depth (high-water hint)

	// Global read-cache accounting (the LASS→CASS forwarding path).
	cacheHits  *telemetry.Counter
	cacheMiss  *telemetry.Counter
	cacheFills *telemetry.Counter
	cacheInval *telemetry.Counter // entries invalidated by upstream events
	cacheFlush *telemetry.Counter // whole-context flushes (lost events, teardown)
}

// Server is one attribute space server instance (a LASS or the CASS).
type Server struct {
	space *attr.Space

	// mu guards connection lifecycle (listeners/conns/closed) and
	// serializes SetTelemetry stores. It is NOT taken on the request
	// fast path — per-request observation goes through tel.
	mu        sync.Mutex
	listeners []net.Listener // every Serve'd listener (tcp and/or unix)
	conns     map[*serverConn]struct{}
	closed    bool
	draining  bool // Shutdown in progress; Serve exits cleanly

	// caps is the transport-v2 capability set this server grants; see
	// SetCaps. Never nil after NewServer.
	caps atomic.Pointer[[]string]

	// inflight counts requests currently inside their synchronous
	// dispatch (reply not yet written). Blocked GETs hand off to a
	// goroutine and leave the count — a drain must not wait for a get
	// that may block forever; closing the connection cancels it.
	inflight atomic.Int64

	// tel is the current telemetry bundle; never nil after NewServer.
	tel    atomic.Pointer[telemetryHandles]
	logger atomic.Pointer[telemetry.Logger]

	// statsKids, when set, supplies child snapshots folded into a
	// `STATS scope=tree` reply. See SetStatsChildren.
	statsKids atomic.Pointer[func() []telemetry.Snapshot]

	// evBuf sizes the fan-out ring + delivery channel of subscriptions
	// created by SUB; see SetEventBuffer.
	evBuf atomic.Int32

	// gcache, when non-nil, serves the G* global-forwarding verbs: this
	// server is a LASS with an upstream CASS. See EnableGlobalCache.
	gcache atomic.Pointer[GlobalCache]

	// shard, when non-nil, makes this server one partition of a sharded
	// CASS: HELLO (and the C* verbs) refuse contexts whose hash places
	// them on a different shard. See SetShard.
	shard atomic.Pointer[shardSpec]
}

// shardSpec is a server's position in a sharded CASS pool.
type shardSpec struct {
	idx, total int
}

// NewServer returns a server around a fresh attribute space.
func NewServer() *Server {
	return NewServerWithSpace(attr.NewSpace())
}

// NewServerWithSpace returns a server around an existing space, which
// lets tests and the in-process fast path share state with the server.
func NewServerWithSpace(space *attr.Space) *Server {
	s := &Server{
		space: space,
		conns: make(map[*serverConn]struct{}),
	}
	s.evBuf.Store(DefaultEventBuffer)
	s.caps.Store(&defaultServerCaps)
	s.SetTelemetry(telemetry.NewRegistry(), telemetry.NewTracer("attrspace"))
	return s
}

// SetCaps replaces the transport-v2 capability set this server is
// willing to grant on HELLO. Callers pass wire.CapMux etc.; passing
// none makes the server behave exactly like a pre-v2 build (SNAPD and
// PING answered with unknown-verb errors, no mux, no chunking) — the
// interop tests use that to simulate a v1 peer.
func (s *Server) SetCaps(caps ...string) {
	cp := append([]string(nil), caps...)
	s.caps.Store(&cp)
}

// Caps returns the capability set granted on HELLO.
func (s *Server) Caps() []string { return *s.caps.Load() }

// CapsWithoutShm returns caps minus the shared-memory transport
// capability — the -shm=false path of lassd/cassd, which keeps every
// client on the socket byte stream while leaving the rest of the v2/v3
// capability set intact.
func CapsWithoutShm(caps []string) []string {
	return withoutCap(caps, wire.CapShm)
}

// withoutCap returns caps minus the named capability (a copy; the
// input — often the server's live set — is never mutated).
func withoutCap(caps []string, name string) []string {
	out := make([]string, 0, len(caps))
	for _, c := range caps {
		if c != name {
			out = append(out, c)
		}
	}
	return out
}

func (s *Server) capEnabled(name string) bool {
	for _, c := range *s.caps.Load() {
		if c == name {
			return true
		}
	}
	return false
}

// SetShard declares this server to be shard idx of a total-way
// partitioned CASS (the cassd -shard i/n flag). From then on HELLO and
// the C* verbs refuse contexts whose name hashes to a different shard
// — a misrouted client gets a "wrong shard" error instead of silently
// splitting one context's attributes across two daemons. Contexts
// under InfraContextPrefix are exempt: router health probes and
// monitor self-publication must exist on every shard.
func (s *Server) SetShard(idx, total int) error {
	if total < 1 || idx < 0 || idx >= total {
		return fmt.Errorf("attrspace: shard %d/%d out of range", idx, total)
	}
	s.shard.Store(&shardSpec{idx: idx, total: total})
	return nil
}

// shardRefuses reports whether this server's shard assignment excludes
// the named context, with the owner's index for the error message.
func (s *Server) shardRefuses(name string) (owner int, refused bool) {
	sp := s.shard.Load()
	if sp == nil || strings.HasPrefix(name, InfraContextPrefix) {
		return 0, false
	}
	owner = ShardIndex(name, sp.total)
	return owner, owner != sp.idx
}

// DefaultEventBuffer is the per-subscription fan-out ring size used
// for SUB when SetEventBuffer was not called.
const DefaultEventBuffer = 64

// SetEventBuffer sizes the per-subscription ring buffer (and delivery
// channel) for subscriptions created by subsequent SUB requests.
// Larger buffers absorb bigger bursts before the overflow policy
// (coalesce-to-latest, then drop-oldest) engages; see attr.Subscription.
func (s *Server) SetEventBuffer(n int) {
	if n < 1 {
		n = 1
	}
	s.evBuf.Store(int32(n))
}

// SetTelemetry installs the registry this server counts into and the
// tracer holding its span log. Either may be nil to keep the current
// one. The tracer's actor name is what distinguishes a CASS from a
// LASS in cross-daemon traces; cmd/cassd passes NewTracer("cassd").
// Safe to call at any time: in-flight requests finish against the old
// bundle, subsequent requests (and subsequently accepted connections)
// observe into the new one.
func (s *Server) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := &telemetryHandles{}
	if cur := s.tel.Load(); cur != nil {
		*h = *cur
	}
	if reg != nil {
		h.reg = reg
		h.verbs = make(map[string]verbMetrics, len(serverVerbs))
		for _, v := range serverVerbs {
			h.verbs[v] = verbMetrics{
				ops: reg.Counter("attrspace.ops." + v),
				lat: reg.Histogram("attrspace.latency."+v, nil),
			}
		}
		h.gConns = reg.Gauge("attrspace.conns")
		h.evPushed = reg.Counter("attrspace.events.pushed")
		h.evLost = reg.Counter("attrspace.events.lost")
		h.evCoalesced = reg.Counter("attrspace.events.coalesced")
		h.evDepth = reg.Gauge("attrspace.events.depth")
		h.cacheHits = reg.Counter("attrspace.cache.hits")
		h.cacheMiss = reg.Counter("attrspace.cache.misses")
		h.cacheFills = reg.Counter("attrspace.cache.fills")
		h.cacheInval = reg.Counter("attrspace.cache.invalidations")
		h.cacheFlush = reg.Counter("attrspace.cache.flushes")
	}
	if tracer != nil {
		h.tracer = tracer
	}
	s.tel.Store(h)
}

// SetStatsChildren installs a callback that supplies the telemetry
// snapshots of this daemon's children (e.g. the aggregated subtree of
// an mrnet reduction root, or downstream LASSes known to a CASS). A
// `STATS scope=tree` request merges them with the daemon's own
// registry — counters sum, gauges take the maximum, histograms merge —
// so one request yields the whole subtree's picture. Nil uninstalls;
// plain STATS is unaffected.
func (s *Server) SetStatsChildren(fn func() []telemetry.Snapshot) {
	if fn == nil {
		s.statsKids.Store(nil)
		return
	}
	s.statsKids.Store(&fn)
}

// Telemetry returns the server's metrics registry.
func (s *Server) Telemetry() *telemetry.Registry {
	return s.tel.Load().reg
}

// Tracer returns the server's span log.
func (s *Server) Tracer() *telemetry.Tracer {
	return s.tel.Load().tracer
}

// SetLogger installs the leveled logger used for connection-level
// diagnostics and serve errors. The default (nil) discards, which is
// what tests want.
func (s *Server) SetLogger(l *telemetry.Logger) {
	s.logger.Store(l)
}

// SetLogf installs a printf-style logging function (e.g. log.Printf).
// It is the legacy form of SetLogger; both paths now feed the same
// leveled logger.
func (s *Server) SetLogf(f func(format string, args ...any)) {
	s.SetLogger(telemetry.FuncLogger(f))
}

func (s *Server) log() *telemetry.Logger {
	return s.logger.Load()
}

// Space returns the underlying attribute space.
func (s *Server) Space() *attr.Space { return s.space }

// Stats returns operation counters since start. It reads through the
// same atomically-snapshotted handle bundle the request path uses, so
// it never races a concurrent SetTelemetry and always reports one
// registry's counters consistently.
func (s *Server) Stats() (puts, gets, tryGets, deletes int64) {
	reg := s.tel.Load().reg
	return reg.Counter("attrspace.ops.put").Value(),
		reg.Counter("attrspace.ops.get").Value(),
		reg.Counter("attrspace.ops.tryget").Value(),
		reg.Counter("attrspace.ops.delete").Value()
}

// observe bumps a verb's counter; the returned func records its
// latency when the reply goes out. Lock-free: one atomic load plus a
// probe of an immutable map.
func (s *Server) observe(verb string) func() {
	vm, ok := s.tel.Load().verbs[verb]
	if !ok {
		return func() {}
	}
	vm.ops.Inc()
	start := time.Now()
	return func() { vm.lat.Since(start) }
}

// Serve accepts connections on l until Close is called or the listener
// fails. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{srv: s, wc: wire.NewConn(c), raw: c}
		// Re-read the current registry per accept, so connections made
		// after SetTelemetry count into the new registry.
		tel := s.tel.Load()
		sc.wc.InstrumentRegistry(tel.reg)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		tel.gConns.Set(int64(len(s.conns)))
		s.mu.Unlock()
		s.log().Debugf("attrspace: accepted %v", c.RemoteAddr())
		go sc.run()
	}
}

// Close stops the listener and disconnects every client.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.raw.Close()
	}
	if gc := s.gcache.Load(); gc != nil {
		gc.Close()
	}
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, announces the drain to every connected client with a
// GOAWAY-style CLOSE verb, waits for in-flight synchronous replies to
// finish (bounded by ctx), then closes everything. Blocked GETs are not
// waited for — they may block indefinitely by design — and are
// cancelled by the final close, erroring their callers. Returns
// ctx.Err() when the deadline cut the drain short, nil otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ls := s.listeners
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		// Best effort: a peer that is already gone fails the send and
		// will be reaped by its own read loop.
		c.wc.Send(wire.NewMessage("CLOSE").Set("reason", "drain"))
	}
	var err error
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-tick.C:
			continue
		}
		break
	}
	s.Close()
	return err
}

func (s *Server) dropConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.tel.Load().gConns.Set(int64(len(s.conns)))
	s.mu.Unlock()
}

// StartMonitorPublisher periodically self-publishes this server's
// registry metrics as attributes named
// "tdp.monitor.<daemon>.<metric>" into contextName, so tools observe
// the daemon with the same Get/Snapshot they use for everything else
// (the paper's own mechanism, turned on the daemons). Histograms
// publish their count and p50/p99 estimates. The publisher holds a
// context reference until stop is called, so the published attributes
// outlive transient clients.
func (s *Server) StartMonitorPublisher(contextName, daemon string, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	ref := s.space.Join(contextName)
	done := make(chan struct{})
	var once sync.Once
	publish := func() {
		snap := s.tel.Load().reg.Snapshot()
		prefix := telemetry.MonitorPrefix + daemon + "."
		pairs := make([]attr.KV, 0, len(snap.Counters)+len(snap.Gauges)+3*len(snap.Histograms))
		for name, v := range snap.Counters {
			pairs = append(pairs, attr.KV{Key: prefix + name, Value: strconv.FormatInt(v, 10)})
		}
		for name, v := range snap.Gauges {
			pairs = append(pairs, attr.KV{Key: prefix + name, Value: strconv.FormatInt(v, 10)})
		}
		for name, h := range snap.Histograms {
			pairs = append(pairs,
				attr.KV{Key: prefix + name + ".count", Value: strconv.FormatInt(h.Count, 10)},
				attr.KV{Key: prefix + name + ".p50", Value: strconv.FormatFloat(h.Quantile(0.5), 'g', 6, 64)},
				attr.KV{Key: prefix + name + ".p99", Value: strconv.FormatFloat(h.Quantile(0.99), 'g', 6, 64)})
		}
		ref.PutBatch(pairs)
	}
	publish()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				publish()
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			ref.Leave()
		})
	}
}

// serverConn is one client session.
type serverConn struct {
	srv *Server
	wc  *wire.Conn
	raw net.Conn

	mu   sync.Mutex
	ref  *attr.Ref // joined context, nil until HELLO
	sub  *attr.Subscription
	caps map[string]bool // capabilities granted on HELLO; nil = v1 peer
	mux  *wire.Mux       // non-nil once CapMux granted

	// Transport-v3 cutover state: the segment created at HELLO (and its
	// file, removed once the client maps it — or at teardown if the
	// client never does), and the ring endpoint handed from the SHMRDY
	// handler to the read loop, which swaps its read side after the
	// dispatch returns (the client's SHMRDY was its last framed socket
	// write).
	shmSeg  *wire.ShmSegment
	shmPath string
	shmEP   *wire.ShmEndpoint
}

// muxer returns the connection's mux, or nil before CapMux was granted.
func (c *serverConn) muxer() *wire.Mux {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux
}

func (c *serverConn) capGranted(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.caps[name]
}

func (c *serverConn) run() {
	srv := c.srv
	defer srv.dropConn(c)
	// Per-connection context cancels blocked GETs when the peer goes away.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer func() {
		c.mu.Lock()
		ref, sub := c.ref, c.sub
		c.ref, c.sub = nil, nil
		shmPath := c.shmPath
		c.shmPath = ""
		c.mu.Unlock()
		if sub != nil && ref != nil {
			ref.Unsubscribe(sub)
		}
		if ref != nil {
			ref.Leave()
		}
		if shmPath != "" {
			// Granted shm at HELLO but the client never sent SHMRDY: the
			// segment file is still on disk. (After a completed cutover
			// the SHMRDY handler already unlinked it.)
			os.Remove(shmPath)
		}
		// Closing the socket also kills the doorbell after a cutover,
		// which wakes anything parked on the ring.
		c.raw.Close()
	}()

	// One request message is reused across the connection's whole
	// life: every handler either finishes with the message before the
	// next RecvInto or extracts plain strings first (the blocking-GET
	// goroutine), so nothing retains it.
	m := new(wire.Message)
	for {
		if err := c.wc.RecvInto(m); err != nil {
			if x := c.muxer(); x != nil {
				x.Fail(err) // wake event/chunk senders blocked on windows
			}
			return // disconnect
		}
		if x := c.muxer(); x != nil {
			if _, handled := x.Accept(m); handled {
				continue // pure transport (WINUP), nothing to dispatch
			}
		}
		// The inflight window covers only the synchronous part of the
		// dispatch: once dispatch returns, any still-pending reply
		// belongs to a blocked GET goroutine, which a drain deliberately
		// does not wait for.
		srv.inflight.Add(1)
		exit := c.dispatch(ctx, m)
		srv.inflight.Add(-1)
		if exit {
			return
		}
		c.mu.Lock()
		ep := c.shmEP
		c.shmEP = nil
		c.mu.Unlock()
		if ep != nil {
			// The dispatch we just returned from was SHMRDY: the client's
			// request was its last framed socket write and our OK was
			// ours, so the socket now belongs to the doorbell and every
			// further frame — starting with the next RecvInto — rides the
			// ring.
			ep.Activate()
			c.wc.SwapRead(ep)
		}
	}
}

// dispatch handles one request; it returns true when the connection
// should end (EXIT).
func (c *serverConn) dispatch(ctx context.Context, m *wire.Message) bool {
	srv := c.srv
	switch m.Verb {
	case "HELLO":
		done := srv.observe("hello")
		name := m.Get("context")
		if owner, refused := srv.shardRefuses(name); refused {
			c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).
				Set("error", fmt.Sprintf("wrong shard: context %q belongs to shard %d", name, owner)))
			done()
			return false
		}
		// Capability negotiation: grant the intersection of what the
		// client offered and what this server speaks. A v1 client sends
		// no caps field and gets none back; a v1 server ignores the
		// field entirely — either way both ends stay on v1 behavior.
		// CapShm is further gated on the transport itself: it is only
		// honest across a same-host connection this build can mmap on,
		// so anywhere else it is stripped from the supported set before
		// the intersection — the client sees a plain v2 grant.
		supported := srv.Caps()
		if !wire.ShmSupported() || !sameHostConn(c.raw) {
			supported = withoutCap(supported, wire.CapShm)
		}
		granted := wire.IntersectCaps(m.Get("caps"), supported)
		c.mu.Lock()
		already := c.ref != nil
		var shmPath string
		if !already {
			c.ref = srv.space.Join(name)
			if granted != "" {
				c.caps = wire.ParseCaps(granted)
				if c.caps[wire.CapShm] {
					// Create the segment now so its path rides the OK. A
					// creation failure (full temp dir, exotic fs) quietly
					// withdraws the grant — the client falls back to the
					// socket like any v2 peer.
					shmPath = shmSegmentPath()
					if seg, err := wire.CreateShmSegment(shmPath, 0); err == nil {
						c.shmSeg, c.shmPath = seg, shmPath
					} else {
						srv.log().Debugf("attrspace: shm segment create: %v", err)
						delete(c.caps, wire.CapShm)
						supported = withoutCap(supported, wire.CapShm)
						granted = wire.IntersectCaps(granted, supported)
						shmPath = ""
					}
				}
				if c.caps[wire.CapMux] {
					c.mux = wire.NewMux(c.wc, wire.MuxConfig{
						Registry:   srv.tel.Load().reg,
						ByteWindow: c.caps[wire.CapByteWin],
					})
				}
			}
		}
		c.mu.Unlock()
		if already {
			c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).Set("error", "already joined"))
			done()
			return false
		}
		ok := wire.NewMessage("OK").Set("id", m.Get("id"))
		if granted != "" {
			ok.Set("caps", granted)
		}
		if shmPath != "" {
			ok.Set("shmfile", shmPath)
		}
		c.reply(ok)
		done()
	case "SHMRDY":
		// Transport-v3 cutover request: the client has mapped the
		// segment announced at HELLO and this frame is the last framed
		// byte it will ever write to the socket. Reply OK (our own last
		// framed socket write), swap the write side onto the ring, and
		// hand the endpoint to the read loop, which swaps its read side
		// before the next RecvInto. The segment file is no longer
		// needed once both ends hold mappings, so unlink it here.
		c.mu.Lock()
		seg := c.shmSeg
		c.mu.Unlock()
		if seg == nil {
			c.unknownVerb(m) // no shm grant on this connection
			return false
		}
		ep := seg.Endpoint(true, c.raw)
		c.reply(wire.NewMessage("OK").Set("id", m.Get("id")))
		c.wc.SwapWrite(ep)
		c.mu.Lock()
		c.shmEP = ep
		c.shmSeg = nil // a second SHMRDY is an unknown verb, not a re-swap
		if c.shmPath != "" {
			os.Remove(c.shmPath)
			c.shmPath = ""
		}
		c.mu.Unlock()
	case "EXIT":
		return true
	case "PING":
		// Wire-level liveness probe (CapPing). Answered inline on the
		// read loop — which is the point: a client's heartbeat must get
		// through even while bulk replies stream from side goroutines.
		if !srv.capEnabled(wire.CapPing) {
			c.unknownVerb(m) // a pre-v2 server would not know PING
			return false
		}
		done := srv.observe("ping")
		c.reply(wire.NewMessage("PONG").Set("id", m.Get("id")))
		done()
		return false
	case "STATS":
		// STATS needs no context: it reports on the daemon, not on
		// any attribute space, so monitoring tools can probe a
		// server without joining (and without bumping refcounts).
		c.handleStats(m)
	case "SNAPD":
		if !srv.capEnabled(wire.CapSnapd) {
			c.unknownVerb(m) // a pre-v2 server would not know SNAPD
			return false
		}
		c.handleOp(ctx, m)
	case "PUT", "MPUT", "GET", "TRYGET", "DELETE", "SNAP", "SUB":
		c.handleOp(ctx, m)
	case "CPUT", "CMPUT", "CGET", "CDEL", "CSNAP", "CCTXS":
		// Context-explicit ops (CapCtxOp): the shard router's pooled
		// connections name the target context per message instead of
		// being bound to one at HELLO.
		if !srv.capEnabled(wire.CapCtxOp) {
			c.unknownVerb(m) // a pre-shard server would not know these
			return false
		}
		c.handleCtxOp(m)
	case "GPUT", "GMPUT", "GGET", "GTRYGET", "GDEL", "GSNAP", "GSNAPM", "GCTXS":
		c.handleGlobal(ctx, m)
	default:
		c.unknownVerb(m)
	}
	return false
}

// unknownVerb is the v1-compat fallback reply: clients probe new verbs
// and latch off the ones a server rejects this way.
func (c *serverConn) unknownVerb(m *wire.Message) {
	c.reply(wire.NewMessage("ERROR").Set("id", m.Get("id")).
		Set("error", fmt.Sprintf("unknown verb %q", m.Verb)))
}

// startSpan opens this daemon's span for a request when the caller
// sent trace IDs; untraced requests record nothing.
func (c *serverConn) startSpan(m *wire.Message) *telemetry.Span {
	tid, sid := m.Trace()
	if tid == "" {
		return nil
	}
	tracer := c.srv.tel.Load().tracer
	return tracer.StartChild("attrspace."+strings.ToLower(m.Verb), tid, sid)
}

func (c *serverConn) handleStats(m *wire.Message) {
	srv := c.srv
	done := srv.observe("stats")
	sp := c.startSpan(m)
	tel := srv.tel.Load()
	snap := tel.reg.Snapshot()
	if m.Get("scope") == "tree" {
		if fn := srv.statsKids.Load(); fn != nil {
			snap = telemetry.MergeSnapshots(append([]telemetry.Snapshot{snap}, (*fn)()...)...)
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		c.replyErr(m.Get("id"), err)
	} else {
		c.reply(wire.NewMessage("STATSV").
			Set("id", m.Get("id")).
			Set("daemon", tel.tracer.Actor()).
			Set("json", string(data)))
	}
	done()
	sp.End()
}

func (c *serverConn) handleOp(ctx context.Context, m *wire.Message) {
	c.mu.Lock()
	ref := c.ref
	c.mu.Unlock()
	id := m.Get("id")
	if ref == nil {
		c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "HELLO required"))
		return
	}
	srv := c.srv
	done := srv.observe(strings.ToLower(m.Verb))
	sp := c.startSpan(m)
	if sp != nil && m.Get("attr") != "" {
		sp.Set("attr", m.Get("attr"))
	}
	finish := func() {
		done()
		sp.End()
	}
	switch m.Verb {
	case "PUT":
		seq, err := ref.PutSeq(m.Get("attr"), m.Get("value"))
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "MPUT":
		pairs, err := decodeBatch(m)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		seq, err := ref.PutBatchSeq(pairs)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "TRYGET":
		v, seq, err := ref.TryGetSeq(m.Get("attr"))
		switch {
		case errors.Is(err, attr.ErrNotFound):
			c.reply(wire.NewMessage("NOTFOUND").Set("id", id).Set("attr", m.Get("attr")))
		case err != nil:
			c.replyErr(id, err)
		default:
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", m.Get("attr")).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
		}
		finish()
	case "GET":
		attribute := m.Get("attr")
		// Fast path: when the attribute is already present the GET
		// cannot block, so answer inline and skip the per-request
		// goroutine entirely — the common case once a job is running.
		if v, seq, err := ref.TryGetSeq(attribute); err == nil {
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
			finish()
			return
		}
		// Blocking get: serve it on its own goroutine so this session
		// keeps processing other requests (the multiplexing that makes
		// async gets possible on a single connection). The latency
		// histogram therefore includes the time spent blocked — the
		// number a tool writer actually experiences.
		go func() {
			v, seq, err := ref.GetSeq(ctx, attribute)
			if err != nil {
				c.replyErr(id, err)
				finish()
				return
			}
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
			finish()
		}()
	case "DELETE":
		seq, err := ref.DeleteSeq(m.Get("attr"))
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "SNAPD":
		// Delta resync: ship only the mutations after the client's seq
		// watermark, falling back to a full versioned snapshot when the
		// bounded change log no longer covers the gap.
		since, perr := strconv.ParseUint(m.Get("since"), 10, 64)
		if perr != nil {
			c.replyErr(id, fmt.Errorf("snapd: bad since %q", m.Get("since")))
			finish()
			return
		}
		changes, ctxSeq, covered, err := ref.ChangesSince(since)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		if !covered {
			snap, ctxSeq, err := ref.SnapshotSeq()
			if err != nil {
				c.replyErr(id, err)
				finish()
				return
			}
			c.sendEntryChunks("SNAPV", id, versionedEntries(snap), ctxSeq, finish)
			return
		}
		c.sendEntryChunks("DELTA", id, deltaEntries(changes), ctxSeq, finish)
	case "SNAP":
		// seqs=1 asks for the versioned form: each entry carries its
		// write seq (s<i>) and the reply carries the context seq, which
		// is what a reconnecting session needs to resync without letting
		// a stale snapshot value clobber a newer live event.
		if m.Get("seqs") == "1" {
			snap, ctxSeq, err := ref.SnapshotSeq()
			if err != nil {
				c.replyErr(id, err)
				finish()
				return
			}
			c.sendEntryChunks("SNAPV", id, versionedEntries(snap), ctxSeq, finish)
			return
		}
		snap, err := ref.Snapshot()
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		reply := wire.NewMessage("SNAPV").Set("id", id).SetInt("n", len(snap))
		i := 0
		for k, v := range snap {
			reply.Set("k"+strconv.Itoa(i), k)
			reply.Set("v"+strconv.Itoa(i), v)
			i++
		}
		c.reply(reply)
		finish()
	case "SUB":
		c.mu.Lock()
		already := c.sub != nil
		var err error
		if !already {
			c.sub, err = ref.Subscribe(int(srv.evBuf.Load()))
		}
		sub := c.sub
		c.mu.Unlock()
		if already {
			c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "already subscribed"))
			finish()
			return
		}
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		go c.pushEvents(sub)
		c.reply(wire.NewMessage("OK").Set("id", id))
		finish()
	}
}

// handleCtxOp serves the C* context-explicit verbs: single-context
// operations whose target context rides in the message (ctx field)
// rather than in the connection's HELLO binding, which is what lets
// one pooled connection carry every context a shard owns. Ops join the
// context only for the op's duration, and only when somebody already
// holds it (Refs > 0) — the shard router's per-context subscription
// connection provides that reference, so a C* op can never create a
// context as a side effect or apply a write to one that everyone has
// already left. CGET is deliberately non-blocking (tryget semantics):
// the router's drain cycle must never stall behind an op that could
// wait forever — blocking reads stay on the per-context path.
func (c *serverConn) handleCtxOp(m *wire.Message) {
	srv := c.srv
	id := m.Get("id")
	done := srv.observe(strings.ToLower(m.Verb))
	sp := c.startSpan(m)
	finish := func() {
		done()
		sp.End()
	}
	if m.Verb == "CCTXS" {
		names := srv.space.Contexts()
		reply := wire.NewMessage("OK").Set("id", id).SetInt("n", len(names))
		for i, name := range names {
			reply.Set("k"+strconv.Itoa(i), name)
		}
		c.reply(reply)
		finish()
		return
	}
	name := m.Get("ctx")
	if name == "" {
		c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "ctxop: missing ctx"))
		finish()
		return
	}
	if owner, refused := srv.shardRefuses(name); refused {
		c.reply(wire.NewMessage("ERROR").Set("id", id).
			Set("error", fmt.Sprintf("wrong shard: context %q belongs to shard %d", name, owner)))
		finish()
		return
	}
	if srv.space.Refs(name) == 0 {
		c.reply(wire.NewMessage("ERROR").Set("id", id).
			Set("error", fmt.Sprintf("ctxop: no such context %q", name)))
		finish()
		return
	}
	ref := srv.space.Join(name)
	defer ref.Leave()
	switch m.Verb {
	case "CPUT":
		seq, err := ref.PutSeq(m.Get("attr"), m.Get("value"))
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "CMPUT":
		pairs, err := decodeBatch(m)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		seq, err := ref.PutBatchSeq(pairs)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "CGET":
		v, seq, err := ref.TryGetSeq(m.Get("attr"))
		switch {
		case errors.Is(err, attr.ErrNotFound):
			c.reply(wire.NewMessage("NOTFOUND").Set("id", id).Set("attr", m.Get("attr")))
		case err != nil:
			c.replyErr(id, err)
		default:
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", m.Get("attr")).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
		}
		finish()
	case "CDEL":
		seq, err := ref.DeleteSeq(m.Get("attr"))
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "CSNAP":
		snap, ctxSeq, err := ref.SnapshotSeq()
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.sendEntryChunks("SNAPV", id, versionedEntries(snap), ctxSeq, finish)
	}
}

// decodeBatch extracts the k0/v0..k(n-1)/v(n-1) pairs of an MPUT. The
// count must be sane before any per-pair work happens: a hostile n
// cannot cost more than the fields actually present.
func decodeBatch(m *wire.Message) ([]attr.KV, error) {
	n, ok := m.Lookup("n")
	if !ok {
		return nil, errors.New("mput: missing n")
	}
	count, err := strconv.Atoi(n)
	if err != nil || count < 0 || count > len(m.Fields) {
		return nil, fmt.Errorf("mput: bad n %q", n)
	}
	pairs := make([]attr.KV, 0, count)
	for i := 0; i < count; i++ {
		k, ok := m.Lookup("k" + strconv.Itoa(i))
		if !ok {
			return nil, fmt.Errorf("mput: missing k%d", i)
		}
		v, ok := m.Lookup("v" + strconv.Itoa(i))
		if !ok {
			return nil, fmt.Errorf("mput: missing v%d", i)
		}
		pairs = append(pairs, attr.KV{Key: k, Value: v})
	}
	return pairs, nil
}

// SnapChunkEntries is the entry-count threshold above which versioned
// snapshot and delta replies are split into part/more chunks when the
// client negotiated CapChunk. 256 entries keep each frame well under
// 64KiB for typical attribute sizes while leaving few enough parts
// that chunking overhead is negligible.
const SnapChunkEntries = 256

// snapEntry is one attribute in a snapshot or delta reply.
type snapEntry struct {
	k, v string
	seq  uint64
	del  bool
}

func versionedEntries(snap map[string]attr.Versioned) []snapEntry {
	out := make([]snapEntry, 0, len(snap))
	for k, v := range snap {
		out = append(out, snapEntry{k: k, v: v.Value, seq: v.Seq})
	}
	return out
}

func deltaEntries(changes []attr.Change) []snapEntry {
	out := make([]snapEntry, 0, len(changes))
	for _, ch := range changes {
		out = append(out, snapEntry{k: ch.Attr, v: ch.Value, seq: ch.Seq, del: ch.Delete})
	}
	return out
}

func appendEntries(m *wire.Message, entries []snapEntry) {
	for i, e := range entries {
		idx := strconv.Itoa(i)
		m.Set("k"+idx, e.k)
		if e.del {
			m.Set("o"+idx, "d")
		} else {
			m.Set("v"+idx, e.v)
		}
		m.Set("s"+idx, strconv.FormatUint(e.seq, 10))
	}
}

// sendEntryChunks streams entries as `verb` replies. Small replies (or
// v1 peers) get the single-message form. Large replies with CapChunk
// granted are split into parts of SnapChunkEntries each and sent from
// their own goroutine on the bulk stream, so the read loop keeps
// servicing the connection — PING heartbeats and window updates
// interleave with the replay instead of queueing behind it. finish is
// called once the last part (or the single reply) is out.
func (c *serverConn) sendEntryChunks(verb, id string, entries []snapEntry, ctxSeq uint64, finish func()) {
	seqStr := strconv.FormatUint(ctxSeq, 10)
	if len(entries) <= SnapChunkEntries || !c.capGranted(wire.CapChunk) {
		m := wire.NewMessage(verb).Set("id", id).SetInt("n", len(entries)).Set("seq", seqStr)
		appendEntries(m, entries)
		c.reply(m)
		finish()
		return
	}
	x := c.muxer()
	go func() {
		defer finish()
		total := len(entries)
		for lo := 0; lo < total; lo += SnapChunkEntries {
			hi := lo + SnapChunkEntries
			if hi > total {
				hi = total
			}
			m := wire.NewMessage(verb).Set("id", id).SetInt("n", hi-lo).
				Set("seq", seqStr).SetInt("part", lo/SnapChunkEntries).SetInt("total", total)
			if hi < total {
				m.Set("more", "1")
			}
			appendEntries(m, entries[lo:hi])
			var err error
			if x != nil {
				err = x.SendOn(wire.StreamBulk, m)
			} else {
				err = c.wc.Send(m)
			}
			if err != nil {
				c.srv.log().Debugf("attrspace: chunked %s to %v failed: %v", verb, c.raw.RemoteAddr(), err)
				return
			}
		}
	}()
}

// pushEvents forwards subscription updates to the peer. Bursts (a
// batched put, a publisher faster than the network) are drained under
// one Cork so the whole burst leaves in a single write. Once per burst
// it samples the ring's overflow counters; any drops since the last
// sample ride the next EVENT as a lost=<delta> field so a mirroring
// consumer knows its picture has a gap.
func (c *serverConn) pushEvents(sub *attr.Subscription) {
	tel := c.srv.tel.Load()
	// The mux (fixed by HELLO, which precedes any SUB) puts events on
	// their own flow-controlled stream: a subscriber that stops reading
	// stalls only this goroutine, never the request/reply path.
	x := c.muxer()
	updates := sub.Updates()
	var reportedLost, reportedCoal uint64
	for u := range updates {
		var lostDelta uint64
		if l := sub.Lost(); l > reportedLost {
			lostDelta = l - reportedLost
			reportedLost = l
			tel.evLost.Add(int64(lostDelta))
		}
		if cl := sub.Coalesced(); cl > reportedCoal {
			tel.evCoalesced.Add(int64(cl - reportedCoal))
			reportedCoal = cl
		}
		tel.evDepth.Set(int64(sub.Depth()))
		c.wc.Cork()
		err := c.sendEvent(x, u, lostDelta)
		sent := 1
	drain:
		for err == nil {
			select {
			case u, ok := <-updates:
				if !ok {
					break drain
				}
				err = c.sendEvent(x, u, 0)
				sent++
			default:
				break drain
			}
		}
		if uerr := c.wc.Uncork(); err == nil {
			err = uerr
		}
		if err != nil {
			return
		}
		tel.evPushed.Add(int64(sent))
	}
}

func (c *serverConn) sendEvent(x *wire.Mux, u attr.Update, lost uint64) error {
	m := wire.NewMessage("EVENT").
		Set("attr", u.Attr).
		Set("value", u.Value).
		Set("op", u.Op.String()).
		Set("seq", strconv.FormatUint(u.Seq, 10))
	if lost > 0 {
		m.Set("lost", strconv.FormatUint(lost, 10))
	}
	if x != nil {
		return x.SendOn(wire.StreamEvents, m)
	}
	return c.wc.Send(m)
}

// handleGlobal serves the G* forwarding verbs: this server acting as a
// LASS relays the operation to its upstream CASS through the global
// cache. Reads are answered from the cache when it holds a live entry
// for the attribute; everything else is one upstream round trip whose
// result (with the CASS-assigned seq) lands in the cache before the
// reply, so a client observes its own writes through the same LASS.
func (c *serverConn) handleGlobal(ctx context.Context, m *wire.Message) {
	c.mu.Lock()
	ref := c.ref
	c.mu.Unlock()
	id := m.Get("id")
	if ref == nil {
		c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "HELLO required"))
		return
	}
	gc := c.srv.gcache.Load()
	if gc == nil {
		c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", "global forwarding not enabled"))
		return
	}
	srv := c.srv
	done := srv.observe(strings.ToLower(m.Verb))
	sp := c.startSpan(m)
	if sp != nil && m.Get("attr") != "" {
		sp.Set("attr", m.Get("attr"))
	}
	finish := func() {
		done()
		sp.End()
	}
	contextName := ref.Context()
	switch m.Verb {
	case "GPUT":
		seq, err := gc.Put(ctx, contextName, m.Get("attr"), m.Get("value"))
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "GMPUT":
		pairs, err := decodeBatch(m)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		seq, err := gc.PutBatch(ctx, contextName, pairs)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "GTRYGET":
		attribute := m.Get("attr")
		v, seq, err := gc.TryGet(ctx, contextName, attribute)
		switch {
		case errors.Is(err, attr.ErrNotFound):
			c.reply(wire.NewMessage("NOTFOUND").Set("id", id).Set("attr", attribute))
		case err != nil:
			c.replyErr(id, err)
		default:
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
		}
		finish()
	case "GGET":
		attribute := m.Get("attr")
		// Cache hit: answer inline, no upstream traffic — the steady
		// state the cache exists for.
		if v, seq, err := gc.TryGet(ctx, contextName, attribute); err == nil {
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
			finish()
			return
		}
		// Miss: block on the CASS from a goroutine, like local GET.
		go func() {
			v, seq, err := gc.Get(ctx, contextName, attribute)
			if err != nil {
				c.replyErr(id, err)
				finish()
				return
			}
			c.reply(wire.NewMessage("VALUE").Set("id", id).Set("attr", attribute).
				Set("value", v).Set("seq", strconv.FormatUint(seq, 10)))
			finish()
		}()
	case "GDEL":
		seq, err := gc.Delete(ctx, contextName, m.Get("attr"))
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(wire.NewMessage("OK").Set("id", id).Set("seq", strconv.FormatUint(seq, 10)))
		finish()
	case "GSNAP":
		snap, err := gc.Snapshot(ctx, contextName)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		reply := wire.NewMessage("SNAPV").Set("id", id).SetInt("n", len(snap))
		i := 0
		for k, v := range snap {
			reply.Set("k"+strconv.Itoa(i), k)
			reply.Set("v"+strconv.Itoa(i), v)
			i++
		}
		c.reply(reply)
		finish()
	case "GSNAPM":
		// Multi-context snapshot: scatter-gather across the CASS shards.
		// Strict by design — any unreachable context fails the request,
		// because a snapshot that silently omits contexts reads as "they
		// are empty".
		n, aerr := strconv.Atoi(m.Get("n"))
		if aerr != nil || n < 0 || n > len(m.Fields) {
			c.replyErr(id, fmt.Errorf("gsnapm: bad n %q", m.Get("n")))
			finish()
			return
		}
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			names = append(names, m.Get("k"+strconv.Itoa(i)))
		}
		snaps, err := gc.SnapshotMany(ctx, names)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		reply, err := encodeSnapshotMany(id, snaps)
		if err != nil {
			c.replyErr(id, err)
			finish()
			return
		}
		c.reply(reply)
		finish()
	case "GCTXS":
		// Global context listing: the deduplicated union over every
		// reachable shard. Best-effort by design — a down shard hides
		// its contexts but does not hide the survivors'.
		names, _ := gc.GlobalContexts(ctx)
		reply := wire.NewMessage("OK").Set("id", id).SetInt("n", len(names))
		for i, name := range names {
			reply.Set("k"+strconv.Itoa(i), name)
		}
		c.reply(reply)
		finish()
	}
}

func (c *serverConn) reply(m *wire.Message) {
	// Replies ride the control stream; routing them through the mux
	// piggybacks accumulated credit grants on traffic the client was
	// waiting for anyway.
	var err error
	if x := c.muxer(); x != nil {
		err = x.SendOn(wire.StreamControl, m)
	} else {
		err = c.wc.Send(m)
	}
	if err != nil {
		c.srv.log().Debugf("attrspace: send to %v failed: %v", c.raw.RemoteAddr(), err)
	}
}

func (c *serverConn) replyErr(id string, err error) {
	c.reply(wire.NewMessage("ERROR").Set("id", id).Set("error", err.Error()))
}

// ListenAndServe starts the server on a network address and returns
// the bound address. A plain host:port listens on TCP; the form
// "unix:/path/to.sock" listens on a unix-domain socket (the same-host
// fast path — stale socket files from a crashed predecessor are
// removed first). Used by cmd/lassd and cmd/cassd; a daemon may call
// it more than once to serve TCP and unix simultaneously.
func (s *Server) ListenAndServe(addr string) (string, error) {
	network, address := "tcp", addr
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, address = "unix", path
		os.Remove(path)
	}
	l, err := net.Listen(network, address)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(l); err != nil {
			s.log().Errorf("attrspace: serve: %v", err)
		}
	}()
	if network == "unix" {
		return "unix:" + l.Addr().String(), nil
	}
	return l.Addr().String(), nil
}

// ListenUnixBeside derives the conventional same-host socket path for a
// TCP address this server is already serving and listens there too, so
// local clients can skip the TCP stack (see AutoDial). It returns the
// "unix:..." address, or "" with a nil error when the TCP address has
// no usable port.
func (s *Server) ListenUnixBeside(tcpAddr string) (string, error) {
	path := SocketPathFor(tcpAddr)
	if path == "" {
		return "", nil
	}
	return s.ListenAndServe("unix:" + path)
}
