package mrnet

import (
	"fmt"
	"net"
	"testing"
	"time"

	"tdp/internal/paradyn"
	"tdp/internal/telemetry"
)

// TestNodeUplinkUpgradesToMux verifies the transport-v2 negotiation on
// a node→node link: the child offers the mux cap in REGISTER, the
// parent acks with OK caps=mux, and the child's sample uplink moves
// onto the flow-controlled samples stream — while reduction results
// stay exactly what the bare connection produced.
func TestNodeUplinkUpgradesToMux(t *testing.T) {
	fe := newFE(t)
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	parent, err := NewNode(Config{
		Name: "parent", Listener: pl, ParentAddr: fe.Addr(), ExpectedChildren: 1,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("parent: %v", err)
	}
	defer parent.Close()

	ll, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	leafReg := telemetry.NewRegistry()
	leaf, err := NewNode(Config{
		Name: "leaf", Listener: ll, ParentAddr: parent.Addr(), ExpectedChildren: 2,
		FlushInterval: 2 * time.Millisecond, Registry: leafReg,
	})
	if err != nil {
		t.Fatalf("leaf: %v", err)
	}
	defer leaf.Close()

	for i := 0; i < 2; i++ {
		fakeDaemon(t, leaf.Addr(), fmt.Sprintf("d%d", i), map[string]paradyn.FuncStats{
			"work": {Calls: 7, TimeMicros: 70},
		}, "exit(0)")
	}
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}

	// The leaf's uplink must have upgraded (the parent is a node and
	// grants the cap; the real front-end upstream of the parent never
	// does, so the parent's own uplink stays v1).
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaf.mu.Lock()
		upgraded := leaf.upMux != nil
		leaf.mu.Unlock()
		if upgraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leaf uplink never upgraded to mux")
		}
		time.Sleep(2 * time.Millisecond)
	}
	parent.mu.Lock()
	parentUpgraded := parent.upMux != nil
	parent.mu.Unlock()
	if parentUpgraded {
		t.Error("parent uplink to the plain front-end upgraded; the front-end never acks caps")
	}

	// Reduction is unchanged by the transport: 2 daemons x 7 calls.
	stats := fe.AllStats()
	if stats["work"].Calls != 14 || stats["work"].TimeMicros != 140 {
		t.Errorf("work = %+v, want 14 calls / 140us through the muxed uplink", stats["work"])
	}
	// The leaf's registry carries the mux gauge once samples flowed.
	snap := leafReg.Snapshot()
	if g, ok := snap.Gauges["wire.mux.streams"]; !ok || g < 1 {
		t.Errorf("wire.mux.streams gauge = %d, %v; want >= 1", g, ok)
	}
}
