package mrnet

import (
	"fmt"
	"net"
	"time"

	"tdp/internal/proxy"
)

// This file builds reduction trees out of Nodes. BuildTree is the
// original two-shape helper (a row of leaves under an optional root);
// BuildReductionTree generalizes it to any fan-out and depth and can
// route every parent-ward hop through a CONNECT proxy, matching how a
// real pool would run internal nodes behind the head node's proxy
// (§2.4).

// TreeConfig parameterizes BuildReductionTree.
type TreeConfig struct {
	// ParentAddr is where the root reports: the tool front-end.
	ParentAddr string
	// Daemons is how many daemons will attach to the tree; leaves
	// split them round-robin (daemon i dials LeafAddrs()[i%len]).
	Daemons int
	// FanOut caps children per internal node. Zero means 8.
	FanOut int
	// Levels is the number of node levels between the daemons and the
	// front-end (1 = a single node, 2 = leaves + root, ...). Zero
	// means the minimum depth that respects FanOut.
	Levels int
	// Dial opens raw connections; nil uses TCP.
	Dial DialFunc
	// Listen opens one listener per node; nil binds TCP loopback.
	// Scenario harnesses use this to put nodes on simulated hosts
	// (netsim), where the matching Dial can reach them.
	Listen func() (net.Listener, error)
	// ProxyAddr, when set, routes every parent-ward connection through
	// the CONNECT proxy at that address.
	ProxyAddr string
	// FlushInterval, StreamBuffer: per-node settings (see Config).
	FlushInterval time.Duration
	StreamBuffer  int
}

// Tree is a constructed reduction network.
type Tree struct {
	nodes  []*Node // all nodes, root first
	leaves []*Node
	root   *Node
}

// Root returns the top node (the one registered with the front-end).
func (t *Tree) Root() *Node { return t.root }

// Nodes returns every node, root first.
func (t *Tree) Nodes() []*Node { return t.nodes }

// LeafAddrs returns the addresses daemons should dial, one per leaf;
// daemon i belongs on LeafAddrs()[i%len].
func (t *Tree) LeafAddrs() []string {
	addrs := make([]string, len(t.leaves))
	for i, n := range t.leaves {
		addrs[i] = n.Addr()
	}
	return addrs
}

// Close tears down every node.
func (t *Tree) Close() {
	for _, n := range t.nodes {
		n.Close()
	}
}

// FlushUp drives one reduction round bottom-up: every node flushes its
// dirty streams to its parent, leaves first, root last. Harnesses that
// build trees with a very long FlushInterval call this to make sample
// propagation deterministic (the root rollup converges in a bounded
// number of rounds instead of on timer ticks).
func (t *Tree) FlushUp() {
	for i := len(t.nodes) - 1; i >= 0; i-- {
		t.nodes[i].Flush()
	}
}

// shareOf returns how many of total items land on bucket i when
// distributed round-robin over buckets.
func shareOf(total, buckets, i int) int {
	n := total / buckets
	if i < total%buckets {
		n++
	}
	return n
}

// BuildReductionTree constructs a balanced tree: Levels rows of
// nodes, at most FanOut children each, the single root reporting to
// ParentAddr. Row sizes are fixed bottom-up — ceil(Daemons/FanOut)
// leaves, each row above ceil of the one below over FanOut — and the
// top row is forced to one node. Daemons and nodes alike are assigned
// to parents round-robin, so expected-children counts are exact and
// every node announces itself upstream only once its subtree has
// registered.
func BuildReductionTree(cfg TreeConfig) (*Tree, error) {
	if cfg.ParentAddr == "" {
		return nil, fmt.Errorf("mrnet: TreeConfig.ParentAddr is required")
	}
	if cfg.Daemons < 1 {
		return nil, fmt.Errorf("mrnet: TreeConfig.Daemons must be positive")
	}
	if cfg.FanOut <= 0 {
		cfg.FanOut = 8
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Listen == nil {
		cfg.Listen = func() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
	}
	dial := cfg.Dial
	if cfg.ProxyAddr != "" {
		inner := cfg.Dial
		dial = func(addr string) (net.Conn, error) {
			return proxy.DialVia(proxy.DialFunc(inner), cfg.ProxyAddr, addr)
		}
	}

	// Row sizes, bottom-up; sizes[0] is the leaf row.
	ceil := func(a, b int) int { return (a + b - 1) / b }
	sizes := []int{ceil(cfg.Daemons, cfg.FanOut)}
	for sizes[len(sizes)-1] > 1 {
		sizes = append(sizes, ceil(sizes[len(sizes)-1], cfg.FanOut))
	}
	if cfg.Levels > 0 {
		for len(sizes) < cfg.Levels {
			sizes = append(sizes, 1)
		}
		if len(sizes) > cfg.Levels {
			return nil, fmt.Errorf("mrnet: %d daemons at fan-out %d need %d levels, got Levels=%d",
				cfg.Daemons, cfg.FanOut, len(sizes), cfg.Levels)
		}
	}
	levels := len(sizes)
	sizes[levels-1] = 1

	t := &Tree{}
	fail := func(err error) (*Tree, error) {
		t.Close()
		return nil, err
	}
	// Build top-down so each row knows its parents' addresses. Nodes
	// with ExpectedChildren > 0 dial upstream only once their subtree
	// registers, so the front-end sees exactly one registration.
	rows := make([][]*Node, levels)
	for lvl := levels - 1; lvl >= 0; lvl-- {
		rows[lvl] = make([]*Node, sizes[lvl])
		for i := range rows[lvl] {
			parentAddr := cfg.ParentAddr
			if lvl < levels-1 {
				parentAddr = rows[lvl+1][i%sizes[lvl+1]].Addr()
			}
			expect := shareOf(cfg.Daemons, sizes[0], i)
			if lvl > 0 {
				expect = shareOf(sizes[lvl-1], sizes[lvl], i)
			}
			l, err := cfg.Listen()
			if err != nil {
				return fail(err)
			}
			name := fmt.Sprintf("mrnet-L%dn%d", lvl, i)
			if lvl == levels-1 {
				name = "mrnet-root"
			}
			node, err := NewNode(Config{
				Name:             name,
				Listener:         l,
				ParentAddr:       parentAddr,
				Dial:             dial,
				FlushInterval:    cfg.FlushInterval,
				ExpectedChildren: expect,
				StreamBuffer:     cfg.StreamBuffer,
			})
			if err != nil {
				return fail(err)
			}
			rows[lvl][i] = node
			t.nodes = append(t.nodes, node)
		}
	}
	t.root = rows[levels-1][0]
	t.leaves = rows[0]
	return t, nil
}

// BuildTree constructs a balanced reduction tree over TCP loopback:
// `leaves` leaf nodes each expecting `fanIn` daemons, all feeding one
// root that reports to parentAddr. It returns the leaf addresses
// (round-robin daemons across them) and a shutdown function. With
// leaves == 1 the single node doubles as the root.
func BuildTree(parentAddr string, leaves, fanIn int, dial DialFunc) (leafAddrs []string, shutdown func(), err error) {
	if leaves < 1 {
		leaves = 1
	}
	var nodes []*Node
	closeAll := func() {
		for _, n := range nodes {
			n.Close()
		}
	}
	rootParent := parentAddr
	if leaves > 1 {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		root, err := NewNode(Config{
			Name: "mrnet-root", Listener: l, ParentAddr: parentAddr,
			Dial: dial, ExpectedChildren: leaves,
		})
		if err != nil {
			return nil, nil, err
		}
		nodes = append(nodes, root)
		rootParent = root.Addr()
	}
	for i := 0; i < leaves; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		name := fmt.Sprintf("mrnet-leaf%d", i)
		parent := rootParent
		if leaves == 1 {
			name = "mrnet-root"
			parent = parentAddr
		}
		leaf, err := NewNode(Config{
			Name: name, Listener: l, ParentAddr: parent,
			Dial: dial, ExpectedChildren: fanIn,
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		nodes = append(nodes, leaf)
		leafAddrs = append(leafAddrs, leaf.Addr())
	}
	return leafAddrs, closeAll, nil
}
