package mrnet

import (
	"sync"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// This file implements a node's telemetry-stream aggregation engine:
// the in-tree filters that turn per-daemon TSAMPLE streams into one
// stream per metric on the uplink. Each (kind, name) pair is a
// stream; the engine keeps every child's latest value per stream and
// recomputes the aggregate from those latest values, so repeated,
// reordered, or replayed samples never double-count — the same
// latest-value discipline the FuncStats reduction uses.
//
// Filters (wire.Kind*):
//
//	counter  — sum of children's latest values (+ retired baselines)
//	gauge    — most recently updated child's value
//	gaugemax — maximum across children's latest values
//	hist     — bucket-wise HistogramSnapshot merge
//
// Overflow policy (PR 3's coalesce-on-overflow, applied to streams):
// updates mark a stream dirty; a stream that is already dirty when a
// new update lands coalesces to the latest value — counted in
// mrnet.stream.coalesced, never lost. The dirty set is bounded by
// StreamBuffer: when it fills, the caller must flush before absorbing
// more (back-pressure toward the children instead of unbounded
// memory). Updates that can no longer reach the parent (upstream gone
// for good) count into mrnet.stream.lost; both counters self-publish
// up the tree, so back-pressure anywhere is visible at the root.
//
// Child death moves the child's stream state to a retired set whose
// counter and histogram contributions keep counting — cumulative
// kinds must stay monotone at the front-end even when a host vanishes
// — while its gauge values (levels of a host that no longer exists)
// drop out of the aggregate. A child that reconnects (resume) has its
// retired state discarded exactly, because it re-publishes its
// cumulative values; nothing is ever folded irreversibly.

// streamKey identifies one aggregation stream.
type streamKey struct {
	kind string
	name string
}

// streamVal is one child's (or the node's own) latest value on a
// stream, plus the trace that most recently touched it.
type streamVal struct {
	num  int64
	hist telemetry.HistogramSnapshot
	at   uint64 // update recency, for the gauge "last" filter
	tid  string // trace of the latest contributing update
	sid  string
}

// streamMetrics bundles the engine's own accounting; all handles come
// from the node's registry so they roll up the tree like any stream.
type streamMetrics struct {
	updates   *telemetry.Counter // TSAMPLEs absorbed
	coalesced *telemetry.Counter // updates folded into an already-dirty stream
	lost      *telemetry.Counter // updates dropped because no parent will ever see them
	flushes   *telemetry.Counter // uplink flushes performed
	depth     *telemetry.Gauge   // dirty-set high-water mark
}

func newStreamMetrics(reg *telemetry.Registry) streamMetrics {
	return streamMetrics{
		updates:   reg.Counter("mrnet.stream.updates"),
		coalesced: reg.Counter("mrnet.stream.coalesced"),
		lost:      reg.Counter("mrnet.stream.lost"),
		flushes:   reg.Counter("mrnet.stream.flushes"),
		depth:     reg.Gauge("mrnet.stream.depth"),
	}
}

// streamAgg is the aggregation state of one node.
type streamAgg struct {
	mu       sync.Mutex
	children map[string]map[streamKey]*streamVal // child name → latest per stream
	self     map[streamKey]*streamVal            // the node's own contributions
	retired  map[string]map[streamKey]*streamVal // dead children: counters/hists still count
	dirty    map[streamKey]struct{}
	lastSent map[streamKey]streamVal // last flushed aggregate, to suppress no-change sends
	tick     uint64                  // recency clock for the gauge "last" filter
	buffer   int                     // dirty-set bound; <=0 means defaultStreamBuffer
	met      streamMetrics
}

// defaultStreamBuffer bounds the dirty set when Config.StreamBuffer
// is zero: far above any realistic distinct-metric count, low enough
// that a runaway publisher triggers flush back-pressure rather than
// unbounded growth.
const defaultStreamBuffer = 4096

func newStreamAgg(buffer int, met streamMetrics) *streamAgg {
	if buffer <= 0 {
		buffer = defaultStreamBuffer
	}
	return &streamAgg{
		children: make(map[string]map[streamKey]*streamVal),
		self:     make(map[streamKey]*streamVal),
		retired:  make(map[string]map[streamKey]*streamVal),
		dirty:    make(map[streamKey]struct{}),
		lastSent: make(map[streamKey]streamVal),
		buffer:   buffer,
		met:      met,
	}
}

// update absorbs one TSAMPLE from a child. It returns true when the
// dirty set has reached its bound and the caller should flush before
// absorbing more (back-pressure).
func (a *streamAgg) update(child string, ts wire.TelemetrySample, tid, sid string) (needFlush bool) {
	key := streamKey{kind: ts.Kind, name: ts.Name}
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.children[child]
	if m == nil {
		m = make(map[streamKey]*streamVal)
		a.children[child] = m
	}
	a.tick++
	v := m[key]
	if v == nil {
		v = &streamVal{}
		m[key] = v
	}
	v.num = ts.Value
	v.hist = ts.Hist
	v.at = a.tick
	v.tid, v.sid = tid, sid
	a.met.updates.Inc()
	a.markDirtyLocked(key)
	return len(a.dirty) >= a.buffer
}

// inject records one of the node's own stream contributions (its
// registry metrics, topology streams, synthetic host-down counts).
func (a *streamAgg) inject(ts wire.TelemetrySample) {
	key := streamKey{kind: ts.Kind, name: ts.Name}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tick++
	v := a.self[key]
	if v == nil {
		v = &streamVal{}
		a.self[key] = v
	}
	v.num = ts.Value
	v.hist = ts.Hist
	v.at = a.tick
	a.markDirtyLocked(key)
}

func (a *streamAgg) markDirtyLocked(key streamKey) {
	if _, ok := a.dirty[key]; ok {
		a.met.coalesced.Inc()
		return
	}
	a.dirty[key] = struct{}{}
	if d := int64(len(a.dirty)); d > a.met.depth.Value() {
		a.met.depth.Set(d)
	}
}

// retire marks a child dead: its counter and histogram contributions
// keep counting (moved to the retired set) while its gauges drop out
// of the aggregate. Every affected stream is marked dirty so the
// change propagates upstream.
func (a *streamAgg) retire(child string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.children[child]
	if m == nil {
		return
	}
	delete(a.children, child)
	a.retired[child] = m
	for key := range m {
		a.markDirtyLocked(key)
	}
}

// revive restores a retired child's stream state as the live starting
// point when the child reconnects (resume). Values are cumulative, so
// the re-published stream simply overwrites them — the aggregate never
// dips while the resync is in flight — and the per-child slot means
// nothing double-counts.
func (a *streamAgg) revive(child string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.retired[child]
	if !ok {
		return
	}
	delete(a.retired, child)
	if a.children[child] == nil {
		a.children[child] = m
		for key := range m {
			// Gauges re-enter the aggregate; recompute affected streams.
			a.markDirtyLocked(key)
		}
	}
}

// aggregateLocked computes one stream's current aggregate.
func (a *streamAgg) aggregateLocked(key streamKey) streamVal {
	var out streamVal
	fold := func(v *streamVal) {
		switch key.kind {
		case wire.KindCounter:
			out.num += v.num
		case wire.KindGauge:
			if v.at >= out.at {
				out.num = v.num
			}
		case wire.KindGaugeMax:
			if out.at == 0 || v.num > out.num {
				out.num = v.num
			}
		case wire.KindHist:
			out.hist = out.hist.Merge(v.hist)
		}
		if v.at >= out.at {
			out.at = v.at
			if v.tid != "" {
				out.tid, out.sid = v.tid, v.sid
			}
		}
	}
	if key.kind == wire.KindCounter || key.kind == wire.KindHist {
		for _, m := range a.retired {
			if v := m[key]; v != nil {
				fold(v)
			}
		}
	}
	if s := a.self[key]; s != nil {
		fold(s)
	}
	for _, m := range a.children {
		if v := m[key]; v != nil {
			fold(v)
		}
	}
	return out
}

// childMax returns the maximum latest value live children report on a
// stream (0 when none) — how a node learns its subtree's depth from
// the children's own depth streams.
func (a *streamAgg) childMax(key streamKey) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var max int64
	for _, m := range a.children {
		if v := m[key]; v != nil && v.num > max {
			max = v.num
		}
	}
	return max
}

// flushItem is one dirty stream's aggregate, ready for the uplink.
type flushItem struct {
	sample   wire.TelemetrySample
	tid, sid string
}

// takeDirty drains the dirty set, returning the aggregates whose
// value actually changed since the last flush (unchanged streams are
// recomputed but not re-sent — a child re-publishing an identical
// value costs nothing upstream).
func (a *streamAgg) takeDirty() []flushItem {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.dirty) == 0 {
		return nil
	}
	items := make([]flushItem, 0, len(a.dirty))
	for key := range a.dirty {
		delete(a.dirty, key)
		agg := a.aggregateLocked(key)
		last, sent := a.lastSent[key]
		if sent && last.num == agg.num &&
			last.hist.Count == agg.hist.Count && last.hist.Sum == agg.hist.Sum {
			continue
		}
		a.lastSent[key] = agg
		items = append(items, flushItem{
			sample: wire.TelemetrySample{Kind: key.kind, Name: key.name, Value: agg.num, Hist: agg.hist},
			tid:    agg.tid, sid: agg.sid,
		})
	}
	return items
}

// dirtyAll re-marks every known stream dirty — the uplink
// resynchronization step after a reconnect, when the new parent
// session must receive the full cumulative state.
func (a *streamAgg) dirtyAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := func(key streamKey) {
		if _, ok := a.dirty[key]; !ok {
			a.dirty[key] = struct{}{}
		}
	}
	for key := range a.self {
		seen(key)
	}
	for _, m := range a.retired {
		for key := range m {
			seen(key)
		}
	}
	for _, m := range a.children {
		for key := range m {
			seen(key)
		}
	}
	// A fresh parent has no memory of what we sent before.
	clear(a.lastSent)
}

// snapshot renders the full aggregated stream state as a registry
// snapshot — the payload of `STATS scope=tree`. Counter streams land
// in Counters, both gauge kinds in Gauges, hist streams in
// Histograms.
func (a *streamAgg) snapshot() telemetry.Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make(map[streamKey]struct{})
	for key := range a.self {
		keys[key] = struct{}{}
	}
	for _, m := range a.retired {
		for key := range m {
			keys[key] = struct{}{}
		}
	}
	for _, m := range a.children {
		for key := range m {
			keys[key] = struct{}{}
		}
	}
	out := telemetry.Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]telemetry.HistogramSnapshot),
	}
	for key := range keys {
		agg := a.aggregateLocked(key)
		switch key.kind {
		case wire.KindCounter:
			out.Counters[key.name] += agg.num
		case wire.KindGauge, wire.KindGaugeMax:
			if cur, ok := out.Gauges[key.name]; !ok || agg.num > cur {
				out.Gauges[key.name] = agg.num
			}
		case wire.KindHist:
			out.Histograms[key.name] = out.Histograms[key.name].Merge(agg.hist)
		}
	}
	return out
}

// depth reports the current dirty-set size (tests and back-pressure
// probes).
func (a *streamAgg) depthNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.dirty)
}
