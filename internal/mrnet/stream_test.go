package mrnet

import (
	"testing"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

func newTestAgg(buffer int) (*streamAgg, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return newStreamAgg(buffer, newStreamMetrics(reg)), reg
}

func TestStreamAggFilters(t *testing.T) {
	a, _ := newTestAgg(0)
	a.update("c1", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 5}, "", "")
	a.update("c2", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 7}, "", "")
	a.update("c1", wire.TelemetrySample{Kind: wire.KindGauge, Name: "cur", Value: 3}, "", "")
	a.update("c2", wire.TelemetrySample{Kind: wire.KindGauge, Name: "cur", Value: 9}, "", "")
	a.update("c1", wire.TelemetrySample{Kind: wire.KindGauge, Name: "cur", Value: 4}, "", "")
	a.update("c1", wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "high", Value: 4}, "", "")
	a.update("c2", wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "high", Value: 11}, "", "")
	h1 := telemetry.NewHistogram([]float64{1, 10})
	h1.Observe(0.5)
	h2 := telemetry.NewHistogram([]float64{1, 10})
	h2.Observe(5)
	h2.Observe(50)
	a.update("c1", wire.TelemetrySample{Kind: wire.KindHist, Name: "lat", Hist: h1.Snapshot()}, "", "")
	a.update("c2", wire.TelemetrySample{Kind: wire.KindHist, Name: "lat", Hist: h2.Snapshot()}, "", "")

	snap := a.snapshot()
	if snap.Counters["ops"] != 12 {
		t.Errorf("counter sum = %d, want 12", snap.Counters["ops"])
	}
	if snap.Gauges["cur"] != 4 {
		t.Errorf("gauge last = %d, want 4 (most recent update)", snap.Gauges["cur"])
	}
	if snap.Gauges["high"] != 11 {
		t.Errorf("gauge max = %d, want 11", snap.Gauges["high"])
	}
	if h := snap.Histograms["lat"]; h.Count != 3 || h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("hist merge = %+v", snap.Histograms["lat"])
	}

	// Latest-value semantics: re-sending a higher cumulative value
	// replaces, never adds.
	a.update("c1", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 6}, "", "")
	if got := a.snapshot().Counters["ops"]; got != 13 {
		t.Errorf("counter after resend = %d, want 13", got)
	}
}

func TestStreamAggRetireAndRevive(t *testing.T) {
	a, _ := newTestAgg(0)
	a.update("up", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 10}, "", "")
	a.update("down", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 32}, "", "")
	a.update("down", wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "high", Value: 99}, "", "")
	a.update("up", wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "high", Value: 7}, "", "")

	a.retire("down")
	snap := a.snapshot()
	if snap.Counters["ops"] != 42 {
		t.Errorf("counter after retire = %d, want 42 (dead host keeps counting)", snap.Counters["ops"])
	}
	if snap.Gauges["high"] != 7 {
		t.Errorf("gauge after retire = %d, want 7 (dead host's level drops out)", snap.Gauges["high"])
	}

	// Revive restores the retired state as the live baseline — no dip,
	// no double count — and the re-published stream overwrites it.
	a.revive("down")
	if got := a.snapshot().Counters["ops"]; got != 42 {
		t.Errorf("counter after revive = %d, want 42", got)
	}
	if got := a.snapshot().Gauges["high"]; got != 99 {
		t.Errorf("gauge after revive = %d, want 99 (level back)", got)
	}
	a.update("down", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 40}, "", "")
	if got := a.snapshot().Counters["ops"]; got != 50 {
		t.Errorf("counter after re-publication = %d, want 50 (overwrite, not add)", got)
	}
}

func TestStreamAggCoalesceAndSuppress(t *testing.T) {
	a, reg := newTestAgg(0)
	a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 1}, "", "")
	a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 2}, "", "")
	a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 3}, "", "")
	if got := reg.Counter("mrnet.stream.coalesced").Value(); got != 2 {
		t.Errorf("coalesced = %d, want 2 (updates folded into a dirty stream)", got)
	}
	items := a.takeDirty()
	if len(items) != 1 || items[0].sample.Value != 3 {
		t.Fatalf("takeDirty = %+v, want one item with the latest value 3", items)
	}
	if got := a.takeDirty(); got != nil {
		t.Errorf("second takeDirty = %+v, want nil (clean)", got)
	}

	// Re-publishing an unchanged aggregate is suppressed.
	a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "ops", Value: 3}, "", "")
	if got := a.takeDirty(); len(got) != 0 {
		t.Errorf("no-change flush = %+v, want empty", got)
	}
	if got := reg.Gauge("mrnet.stream.depth").Value(); got < 1 {
		t.Errorf("depth high-water = %d, want >= 1", got)
	}
}

func TestStreamAggBackpressure(t *testing.T) {
	a, _ := newTestAgg(2)
	if full := a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "a", Value: 1}, "", ""); full {
		t.Error("dirty=1 of 2 reported full")
	}
	if full := a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "b", Value: 1}, "", ""); !full {
		t.Error("dirty=2 of 2 did not demand a flush")
	}
	a.takeDirty()
	if full := a.update("c", wire.TelemetrySample{Kind: wire.KindCounter, Name: "a", Value: 2}, "", ""); full {
		t.Error("flushed set still reported full")
	}
}
