package mrnet

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/netsim"
	"tdp/internal/proxy"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// testSink is a minimal front-end stand-in: it accepts connections,
// answers every REGISTER with RUN, and counts every message it
// receives — the "front-end socket loop" whose rate the reduction
// tree must keep independent of daemon count.
type testSink struct {
	l     net.Listener
	msgs  atomic.Int64
	conns atomic.Int64

	mu    sync.Mutex
	verbs map[string]int
}

func newTestSink(t *testing.T) *testSink {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &testSink{l: l, verbs: make(map[string]int)}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.conns.Add(1)
			go func() {
				wc := wire.NewConn(c)
				defer c.Close()
				for {
					m, err := wc.Recv()
					if err != nil {
						return
					}
					s.msgs.Add(1)
					s.mu.Lock()
					s.verbs[m.Verb]++
					s.mu.Unlock()
					if m.Verb == "REGISTER" {
						wc.Send(wire.NewMessage("RUN"))
					}
				}
			}()
		}
	}()
	return s
}

func (s *testSink) addr() string { return s.l.Addr().String() }

func (s *testSink) verbCount(verb string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verbs[verb]
}

// registerDaemon dials addr and registers under name. It does not
// wait for RUN — with ExpectedChildren gating the upstream dial, RUN
// only flows once the last sibling registers — so callers that need
// it use awaitRun after registering everyone.
func registerDaemon(t *testing.T, addr, name, host string) *wire.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("%s: dial: %v", name, err)
	}
	wc := wire.NewConn(raw)
	if err := wc.Send(wire.NewMessage("REGISTER").
		Set("daemon", name).Set("host", host).SetInt("pid", 1)); err != nil {
		t.Fatalf("%s: register: %v", name, err)
	}
	return wc
}

func awaitRun(t *testing.T, wc *wire.Conn) {
	t.Helper()
	if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("expected RUN, got %v, %v", m, err)
	}
}

func sendTSample(t *testing.T, wc *wire.Conn, ts wire.TelemetrySample) {
	t.Helper()
	m, err := ts.Message()
	if err != nil {
		t.Fatalf("tsample encode: %v", err)
	}
	if err := wc.Send(m); err != nil {
		t.Fatalf("tsample send: %v", err)
	}
}

// TestRegisterErrorFrames: malformed or duplicate registrations get an
// explicit ERROR reply, never a silent drop; resume replaces.
func TestRegisterErrorFrames(t *testing.T) {
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	node, err := NewNode(Config{
		Name: "agg", Listener: l, ParentAddr: "127.0.0.1:1",
		ExpectedChildren: 100, FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	expectError := func(m *wire.Message, fragment string) {
		t.Helper()
		raw, err := net.Dial("tcp", node.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer raw.Close()
		wc := wire.NewConn(raw)
		if err := wc.Send(m); err != nil {
			t.Fatalf("send: %v", err)
		}
		reply, err := wc.Recv()
		if err != nil {
			t.Fatalf("no ERROR reply for %s (connection dropped silently): %v", m.Verb, err)
		}
		if reply.Verb != "ERROR" || !strings.Contains(reply.Get("error"), fragment) {
			t.Fatalf("reply = %s %q, want ERROR containing %q", reply.Verb, reply.Get("error"), fragment)
		}
	}

	expectError(wire.NewMessage("PUT").Set("name", "x"), "expected REGISTER")
	expectError(wire.NewMessage("REGISTER").Set("host", "h"), "without daemon name")

	// A valid registration, then a duplicate of it.
	raw, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	first := wire.NewConn(raw)
	if err := first.Send(wire.NewMessage("REGISTER").Set("daemon", "d0").Set("host", "h")); err != nil {
		t.Fatalf("register: %v", err)
	}
	expectError(wire.NewMessage("REGISTER").Set("daemon", "d0").Set("host", "h"), "duplicate")

	// resume=1 replaces the live registration: accepted, and the old
	// connection is closed by the node.
	raw2, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw2.Close()
	second := wire.NewConn(raw2)
	if err := second.Send(wire.NewMessage("REGISTER").
		Set("daemon", "d0").Set("host", "h").Set("resume", "1")); err != nil {
		t.Fatalf("resume register: %v", err)
	}
	done := make(chan struct{})
	go func() { first.Recv(); close(done) }()
	select {
	case <-done: // old conn closed — resume accepted
	case <-time.After(2 * time.Second):
		t.Fatal("resume registration did not replace the old connection")
	}
	if node.ChildCount() != 1 {
		t.Errorf("ChildCount = %d, want 1 after resume", node.ChildCount())
	}
}

// TestStatsScopeTreeOverWire: a connection that opens with STATS is a
// monitoring client; scope=tree returns the merged subtree rollup in
// the same STATSV shape the attrspace servers use.
func TestStatsScopeTreeOverWire(t *testing.T) {
	sink := newTestSink(t)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	node, err := NewNode(Config{
		Name: "agg", Listener: l, ParentAddr: sink.addr(),
		ExpectedChildren: 2, FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	d0 := registerDaemon(t, node.Addr(), "d0", "h0")
	defer d0.Close()
	d1 := registerDaemon(t, node.Addr(), "d1", "h1")
	defer d1.Close()
	awaitRun(t, d0)
	awaitRun(t, d1)
	sendTSample(t, d0, wire.TelemetrySample{Kind: wire.KindCounter, Name: "app.ops", Value: 30})
	sendTSample(t, d1, wire.TelemetrySample{Kind: wire.KindCounter, Name: "app.ops", Value: 12})
	sendTSample(t, d1, wire.TelemetrySample{Kind: wire.KindGaugeMax, Name: "app.depth", Value: 9})

	waitFor(t, 5*time.Second, func() bool {
		return node.Registry().Counter("mrnet.stream.updates").Value() == 3
	}, "stream updates absorbed")

	raw, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wc.Send(wire.NewMessage("STATS").Set("id", "7").Set("scope", "tree")); err != nil {
		t.Fatalf("STATS: %v", err)
	}
	reply, err := wc.Recv()
	if err != nil {
		t.Fatalf("STATSV: %v", err)
	}
	if reply.Verb != "STATSV" || reply.Get("id") != "7" || reply.Get("daemon") != "agg" {
		t.Fatalf("reply = %v", reply)
	}
	snap, err := telemetry.ParseSnapshot([]byte(reply.Get("json")))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if snap.Counters["app.ops"] != 42 {
		t.Errorf("app.ops = %d, want 42 (30+12)", snap.Counters["app.ops"])
	}
	if snap.Gauges["app.depth"] != 9 {
		t.Errorf("app.depth = %d, want 9", snap.Gauges["app.depth"])
	}
	if snap.Counters["mrnet.tree.daemons"] != 2 {
		t.Errorf("mrnet.tree.daemons = %d, want 2", snap.Counters["mrnet.tree.daemons"])
	}

	// The same connection can poll repeatedly.
	if err := wc.Send(wire.NewMessage("STATS").Set("scope", "tree")); err != nil {
		t.Fatalf("second STATS: %v", err)
	}
	if reply, err = wc.Recv(); err != nil || reply.Verb != "STATSV" {
		t.Fatalf("second STATSV: %v %v", reply, err)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFanIn256ThreeLevel is the scaling acceptance test: 256 daemons
// under a 3-level reduction tree deliver aggregated counter and
// histogram streams, and the front-end receives fewer messages than
// there are daemons — its socket-loop rate depends on the number of
// distinct streams, not the pool size.
func TestFanIn256ThreeLevel(t *testing.T) {
	const (
		daemons = 256
		rounds  = 4
		perOps  = 25 // cumulative step; final per-daemon value rounds*perOps
	)
	sink := newTestSink(t)
	tree, err := BuildReductionTree(TreeConfig{
		ParentAddr: sink.addr(),
		Daemons:    daemons,
		FanOut:     8,
		Levels:     3,
		// Flushes are driven manually below, so the sink's message
		// count is a function of flush rounds alone.
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("BuildReductionTree: %v", err)
	}
	defer tree.Close()
	if got := len(tree.LeafAddrs()); got != 32 {
		t.Fatalf("leaves = %d, want 32", got)
	}
	if got := len(tree.Nodes()); got != 37 { // 32 + 4 + 1
		t.Fatalf("nodes = %d, want 37", got)
	}

	var (
		connMu sync.Mutex
		conns  []*wire.Conn
	)
	t.Cleanup(func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	var wg sync.WaitGroup
	leafAddrs := tree.LeafAddrs()
	errs := make(chan error, daemons)
	for i := 0; i < daemons; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", leafAddrs[i%len(leafAddrs)])
			if err != nil {
				errs <- fmt.Errorf("d%d: dial: %v", i, err)
				return
			}
			wc := wire.NewConn(raw)
			connMu.Lock()
			conns = append(conns, wc)
			connMu.Unlock()
			if err := wc.Send(wire.NewMessage("REGISTER").
				Set("daemon", fmt.Sprintf("d%d", i)).
				Set("host", fmt.Sprintf("h%d", i%16)).
				SetInt("pid", i)); err != nil {
				errs <- fmt.Errorf("d%d: register: %v", i, err)
				return
			}
			if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
				errs <- fmt.Errorf("d%d: expected RUN, got %v, %v", i, m, err)
				return
			}
			// Cumulative counter stream plus one histogram publication.
			for k := 1; k <= rounds; k++ {
				m, _ := wire.TelemetrySample{
					Kind: wire.KindCounter, Name: "app.ops", Value: int64(k * perOps),
				}.Message()
				if err := wc.Send(m); err != nil {
					errs <- fmt.Errorf("d%d: tsample: %v", i, err)
					return
				}
			}
			h := telemetry.NewHistogram([]float64{1, 10, 100})
			h.Observe(float64(i % 20))
			m, _ := wire.TelemetrySample{Kind: wire.KindHist, Name: "app.lat", Hist: h.Snapshot()}.Message()
			if err := wc.Send(m); err != nil {
				errs <- fmt.Errorf("d%d: hist: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every leaf absorbed its share: 8 daemons x (rounds counter
	// publications + 1 histogram).
	for _, leaf := range tree.Nodes()[5:] {
		waitFor(t, 10*time.Second, func() bool {
			return leaf.Registry().Counter("mrnet.stream.updates").Value() == 8*(rounds+1)
		}, fmt.Sprintf("leaf absorption (node %s)", leaf.cfg.Name))
	}

	// Drive flushes bottom-up until the root rollup converges.
	nodes := tree.Nodes() // root first; iterate in reverse for bottom-up
	var snap telemetry.Snapshot
	waitFor(t, 10*time.Second, func() bool {
		for i := len(nodes) - 1; i >= 0; i-- {
			nodes[i].flush()
		}
		snap = tree.Root().TreeSnapshot()
		return snap.Counters["app.ops"] == daemons*rounds*perOps &&
			snap.Histograms["app.lat"].Count == daemons
	}, "root rollup convergence")

	if got := snap.Counters["mrnet.tree.daemons"]; got != daemons {
		t.Errorf("mrnet.tree.daemons = %d, want %d", got, daemons)
	}
	if got := snap.Gauges["mrnet.tree.depth"]; got != 3 {
		t.Errorf("mrnet.tree.depth = %d, want 3", got)
	}
	if snap.Counters["mrnet.stream.updates"] == 0 {
		t.Error("aggregated rollup missing the nodes' own stream metrics")
	}

	// The front-end held one connection and received fewer messages
	// than there are daemons, though the daemons injected >1500: the
	// uplink rate tracks distinct streams, not pool size.
	if got := sink.conns.Load(); got != 1 {
		t.Errorf("front-end connections = %d, want 1", got)
	}
	if got := sink.msgs.Load(); got >= daemons {
		t.Errorf("front-end received %d messages for %d daemons; aggregation should keep this below one per daemon", got, daemons)
	}
	if sink.verbCount("TSAMPLE") == 0 {
		t.Error("no TSAMPLE reached the front-end")
	}
}

// TestChaosSpanPropagation drives traced telemetry through a 2-level
// tree while a chaos dialer cuts connections on every hop. Daemons
// and nodes reconnect with resume semantics; afterwards every span's
// parent must resolve (no orphaned spans) and the aggregated counter
// and lost totals observed at the root must be monotone.
func TestChaosSpanPropagation(t *testing.T) {
	const (
		nDaemons = 8
		rounds   = 120
		step     = 10
	)
	sink := newTestSink(t)
	treeChaos := netsim.NewChaos(netsim.ChaosConfig{Seed: 7, CutAfterBytes: 64 << 10})
	tree, err := BuildReductionTree(TreeConfig{
		ParentAddr:    sink.addr(),
		Daemons:       nDaemons,
		FanOut:        4,
		Levels:        2,
		FlushInterval: 2 * time.Millisecond,
		Dial:          treeChaos.Dial(func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }),
	})
	if err != nil {
		t.Fatalf("BuildReductionTree: %v", err)
	}
	defer tree.Close()

	daemonChaos := netsim.NewChaos(netsim.ChaosConfig{Seed: 11, CutAfterBytes: 4 << 10})
	dial := daemonChaos.Dial(func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) })

	tracers := make([]*telemetry.Tracer, nDaemons)
	leafAddrs := tree.LeafAddrs()
	var wg sync.WaitGroup
	for i := 0; i < nDaemons; i++ {
		tracers[i] = telemetry.NewTracer(fmt.Sprintf("d%d", i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("d%d", i)
			addr := leafAddrs[i%len(leafAddrs)]
			var wc *wire.Conn
			connect := func(resume bool) bool {
				for a := 0; a < 200; a++ {
					raw, err := dial(addr)
					if err != nil {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					c := wire.NewConn(raw)
					reg := wire.NewMessage("REGISTER").Set("daemon", name).Set("host", "h").SetInt("pid", i)
					if resume {
						reg.Set("resume", "1")
					}
					if c.Send(reg) != nil {
						c.Close()
						continue
					}
					if !resume {
						if m, err := c.Recv(); err != nil || m.Verb != "RUN" {
							c.Close()
							continue
						}
					}
					wc = c
					return true
				}
				return false
			}
			if !connect(false) {
				t.Errorf("%s: never connected", name)
				return
			}
			defer func() { wc.Close() }()
			for k := 1; k <= rounds; {
				sp := tracers[i].StartSpan("publish")
				m, _ := wire.TelemetrySample{
					Kind: wire.KindCounter, Name: "chaos.ops", Value: int64(k * step),
				}.Message()
				m.SetTrace(sp.TraceID(), sp.SpanID())
				err := wc.Send(m)
				sp.End()
				if err != nil {
					wc.Close()
					if !connect(true) {
						t.Errorf("%s: reconnect failed", name)
						return
					}
					continue // re-send the same cumulative value
				}
				k++
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	// While daemons publish, watch the root rollup: cumulative streams
	// must never run backwards, reconnects and retires included.
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	var monErr error
	go func() {
		defer monWG.Done()
		var lastOps, lastLost int64
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			snap := tree.Root().TreeSnapshot()
			ops := snap.Counters["chaos.ops"]
			lost := snap.Counters["mrnet.stream.lost"]
			if ops < lastOps && monErr == nil {
				monErr = fmt.Errorf("chaos.ops ran backwards: %d -> %d", lastOps, ops)
			}
			if lost < lastLost && monErr == nil {
				monErr = fmt.Errorf("mrnet.stream.lost ran backwards: %d -> %d", lastLost, lost)
			}
			lastOps, lastLost = ops, lost
		}
	}()

	// A couple of mass cuts mid-run for good measure.
	time.Sleep(50 * time.Millisecond)
	daemonChaos.CutAll()
	time.Sleep(50 * time.Millisecond)
	treeChaos.CutAll()

	wg.Wait()
	want := int64(nDaemons * rounds * step)
	waitFor(t, 15*time.Second, func() bool {
		return tree.Root().TreeSnapshot().Counters["chaos.ops"] == want
	}, "chaos rollup convergence")
	close(stop)
	monWG.Wait()
	if monErr != nil {
		t.Error(monErr)
	}

	// Span closure: every recorded span's parent resolves somewhere in
	// the union of daemon and node span logs.
	all := make(map[string]struct{})
	var records []telemetry.SpanRecord
	collect := func(tr *telemetry.Tracer) {
		for _, rec := range tr.Spans() {
			all[rec.SpanID] = struct{}{}
			records = append(records, rec)
		}
	}
	for _, tr := range tracers {
		collect(tr)
	}
	for _, n := range tree.Nodes() {
		collect(n.Tracer())
	}
	orphans := 0
	for _, rec := range records {
		if rec.ParentID == "" {
			continue
		}
		if _, ok := all[rec.ParentID]; !ok {
			orphans++
		}
	}
	if orphans > 0 {
		t.Errorf("%d orphaned spans (parent not recorded anywhere)", orphans)
	}
	rootSpans := tree.Root().Tracer().Spans()
	if len(rootSpans) == 0 {
		t.Error("no spans recorded at the root: trace context did not propagate through the tree")
	}
	if daemonChaos.Stats().Cuts == 0 {
		t.Error("chaos injector never cut a daemon connection; test exercised nothing")
	}
}

// TestTreeViaProxy routes every parent-ward hop through the CONNECT
// proxy, the way internal nodes behind a head node would reach the
// front-end (§2.4).
func TestTreeViaProxy(t *testing.T) {
	sink := newTestSink(t)

	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ps := newProxyServer(t, proxyLn)

	tree, err := BuildReductionTree(TreeConfig{
		ParentAddr:    sink.addr(),
		Daemons:       2,
		FanOut:        2,
		Levels:        2,
		ProxyAddr:     proxyLn.Addr().String(),
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("BuildReductionTree: %v", err)
	}
	defer tree.Close()

	d0 := registerDaemon(t, tree.LeafAddrs()[0], "d0", "h0")
	defer d0.Close()
	d1 := registerDaemon(t, tree.LeafAddrs()[0], "d1", "h1")
	defer d1.Close()
	awaitRun(t, d0)
	awaitRun(t, d1)
	sendTSample(t, d0, wire.TelemetrySample{Kind: wire.KindCounter, Name: "app.ops", Value: 5})
	sendTSample(t, d1, wire.TelemetrySample{Kind: wire.KindCounter, Name: "app.ops", Value: 7})

	waitFor(t, 10*time.Second, func() bool {
		return tree.Root().TreeSnapshot().Counters["app.ops"] == 12
	}, "rollup through the proxy")
	waitFor(t, 10*time.Second, func() bool {
		return sink.verbCount("TSAMPLE") > 0
	}, "TSAMPLE at the front-end via proxy")
	tunnels, _ := ps.Stats()
	if tunnels < 2 { // leaf->root and root->front-end
		t.Errorf("proxy tunnels = %d, want >= 2", tunnels)
	}
}

func newProxyServer(t *testing.T, l net.Listener) *proxy.Server {
	t.Helper()
	ps := proxy.NewServer(func(addr string) (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, nil)
	go ps.Serve(l)
	t.Cleanup(ps.Close)
	return ps
}
