// Package mrnet implements a software multicast/reduction network for
// scalable tools — the auxiliary-service kind the paper requires the
// resource manager to be able to launch ("software multicast/reduction
// networks are crucial to scalable tool use", §2, citing MRNet). With
// hundreds of daemons, a front-end cannot hold one connection per
// daemon; a tree of internal nodes multicasts control downstream and
// reduces data upstream.
//
// A Node interposes transparently on the paradyn front-end protocol:
//
//   - downstream it acts like a front-end: accepts daemon REGISTER
//     messages, forwards the RUN command, receives SAMPLE/DONE;
//   - upstream it acts like a single daemon: registers itself as an
//     aggregate, forwards reduced samples, and reports DONE when every
//     child is done.
//
// Reduction sums per-function call counts and times across children —
// exactly the merge the front-end would do, moved into the tree.
// Nodes compose: a node's parent may be another node, forming trees of
// any fan-in and depth.
//
// Beyond the profile reduction, the tree doubles as the pool's
// observability plane. Children publish their telemetry registries as
// TSAMPLE streams; each node applies a per-kind aggregation filter
// (counters sum, gauges last/max, histograms merge — see stream.go)
// and forwards one Cork-batched update per stream per flush, so the
// front-end's message rate depends on the number of distinct metrics,
// not the number of daemons. Each node also injects its own registry
// and topology (subtree daemon count, tree depth) into the streams,
// answers `STATS scope=tree` with the merged subtree snapshot, and
// surfaces child failure as a synthetic host_down sample plus an
// mrnet.hosts.down counter. A node that loses its parent reconnects
// with resume semantics and re-publishes its cumulative state, which
// is safe because every stream carries latest values, never deltas.
package mrnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdp/internal/paradyn"
	"tdp/internal/telemetry"
	"tdp/internal/toolapi"
	"tdp/internal/wire"
)

// DialFunc opens the upstream connection (to the parent node or the
// real front-end).
type DialFunc func(addr string) (net.Conn, error)

// Config parameterizes a Node.
type Config struct {
	// Name identifies this node in its upstream registration.
	Name string
	// Listener accepts downstream (daemon or child-node) connections.
	Listener net.Listener
	// ParentAddr is the upstream address (front-end or parent node).
	ParentAddr string
	// Dial opens the upstream connection; nil uses TCP.
	Dial DialFunc
	// FlushInterval is how often reduced samples flow upstream.
	// Zero means 5ms.
	FlushInterval time.Duration
	// ExpectedChildren, when > 0, delays the upstream REGISTER until
	// that many children have registered, so the aggregate announces
	// itself once, completely. Zero registers upstream immediately.
	ExpectedChildren int
	// StreamBuffer bounds the telemetry dirty set: when that many
	// distinct streams have pending updates, the absorbing child
	// handler flushes synchronously before accepting more
	// (back-pressure). Zero means a generous default.
	StreamBuffer int
	// Registry is the node's own telemetry; nil creates a private one.
	// Its metrics self-publish into the stream plane every flush.
	Registry *telemetry.Registry
	// Tracer records the node's spans (TSAMPLE receipt, uplink
	// flushes); nil creates one named after the node.
	Tracer *telemetry.Tracer
}

// Node is one process of the reduction network.
type Node struct {
	cfg     Config
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	streams *streamAgg

	mu           sync.Mutex
	up           *wire.Conn
	upMux        *wire.Mux // non-nil once the parent granted the mux cap
	upBatch      bool      // parent granted tbatch: whole drain cycles ride one frame
	reconnecting bool
	children     map[string]*childState
	totals       map[string]paradyn.FuncStats
	synthetic    map[string]paradyn.FuncStats // host_down and friends
	lastSelf     telemetry.Snapshot           // last self-published registry state
	fnsDirty     bool                         // a profile sample arrived since the last reduce
	selfEvery    int                          // flush cycles between self-registry publications
	selfCount    int                          // cycles until the next one (0 = due now)
	selfForce    bool                         // publish self on the next flush regardless
	doneCount    int
	exitAgg      string
	closed       bool
	ranSent      bool
	runRecvd     bool
	upReadyOnce  sync.Once
	upReady      chan struct{}
	sessionDone  chan struct{}
	wg           sync.WaitGroup
}

type childState struct {
	name string
	host string
	kind string // "daemon" or "node"
	conn *wire.Conn
	// latest per-function sample from this child; reduction recomputes
	// totals from the latest value of every child, so repeated samples
	// do not double-count.
	latest map[string]paradyn.FuncStats
	done   bool
	gone   bool // connection died before DONE (host down)
}

// ChildInfo is one downstream registration, for topology views.
type ChildInfo struct {
	Name string
	Host string
	Kind string
	Done bool
	Gone bool
}

// ErrNoParent is returned when the node cannot reach its parent.
var ErrNoParent = errors.New("mrnet: cannot reach parent")

// NewNode starts a node. It begins accepting children immediately and
// connects upstream (immediately, or after ExpectedChildren register).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Listener == nil {
		return nil, errors.New("mrnet: Config.Listener is required")
	}
	if cfg.ParentAddr == "" {
		return nil, errors.New("mrnet: Config.ParentAddr is required")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.Name == "" {
		cfg.Name = "mrnet-node"
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(cfg.Name)
	}
	n := &Node{
		cfg:         cfg,
		reg:         cfg.Registry,
		tracer:      cfg.Tracer,
		children:    make(map[string]*childState),
		totals:      make(map[string]paradyn.FuncStats),
		synthetic:   make(map[string]paradyn.FuncStats),
		upReady:     make(chan struct{}),
		sessionDone: make(chan struct{}),
	}
	// Self-registry publication rides the flush loop but at a coarser
	// cadence (~100ms, at most every 16th cycle): snapshotting and
	// diffing the registry every millisecond-scale cycle costs more CPU
	// than forwarding the children's streams does, and the node's own
	// wire counters change on every message, so publishing them each
	// cycle keeps every uplink permanently dirty. Event edges that must
	// not wait (child death, resync, session end) force an immediate
	// publication, and TreeSnapshot publishes on demand.
	n.selfEvery = int(100 * time.Millisecond / cfg.FlushInterval)
	if n.selfEvery < 1 {
		n.selfEvery = 1
	} else if n.selfEvery > 16 {
		n.selfEvery = 16
	}
	n.streams = newStreamAgg(cfg.StreamBuffer, newStreamMetrics(n.reg))
	if cfg.ExpectedChildren <= 0 {
		if err := n.connectUpstream(false); err != nil {
			cfg.Listener.Close()
			return nil, err
		}
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.flushLoop()
	return n, nil
}

// Addr returns the address daemons (or child nodes) should dial.
func (n *Node) Addr() string { return n.cfg.Listener.Addr().String() }

// Registry returns the node's own telemetry registry.
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Tracer returns the node's span tracer.
func (n *Node) Tracer() *telemetry.Tracer { return n.tracer }

// connectUpstream dials the parent and registers. With resume set the
// registration replaces a prior session (after a reconnect) and the
// node re-publishes its full cumulative state, which latest-value
// semantics make safe.
func (n *Node) connectUpstream(resume bool) error {
	raw, err := n.cfg.Dial(n.cfg.ParentAddr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoParent, err)
	}
	up := wire.NewConn(raw)
	up.InstrumentRegistry(n.reg)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		up.Close()
		return errors.New("mrnet: node closed")
	}
	children := len(n.children)
	n.mu.Unlock()
	reg := wire.NewMessage("REGISTER").
		Set("daemon", n.cfg.Name).
		Set("host", "mrnet").
		Set("kind", "node").
		Set("executable", fmt.Sprintf("aggregate(%d children)", children)).
		SetInt("pid", 0).
		SetInt("rank", 0).
		// Offer the transport-v2 mux, batched flushes, and byte-granular
		// windows. A parent node acks with OK caps=mux,tbatch,bytewin
		// and the uplink upgrades; the real front-end ignores the field
		// and everything stays v1. (The shm cap is not offered here:
		// tree links cross hosts by construction, and a co-located
		// daemon's attribute traffic already rides the attrspace
		// clients, which negotiate shm on their own.)
		Set("caps", wire.CapMux+","+wire.CapTBatch+","+wire.CapByteWin)
	if resume {
		reg.Set("resume", "1")
	}
	if err := up.Send(reg); err != nil {
		up.Close()
		return err
	}
	n.mu.Lock()
	n.up = up
	n.upMux = nil
	n.upBatch = false
	n.reconnecting = false
	if resume {
		// The new parent session starts from nothing: resend every
		// function total and the self registry on the next flush.
		clear(n.totals)
		n.fnsDirty = true
		n.selfForce = true
	}
	n.mu.Unlock()
	if resume {
		n.streams.dirtyAll()
	}
	n.upReadyOnce.Do(func() { close(n.upReady) })
	// Upstream RUN handling: multicast to children. A receive error
	// means the parent is gone; hand off to the reconnect path.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			m, err := up.Recv()
			if err != nil {
				n.upstreamLost(up)
				return
			}
			n.mu.Lock()
			x := n.upMux
			n.mu.Unlock()
			if x != nil {
				if _, handled := x.Accept(m); handled {
					continue // WINUP: grants applied, flush unblocked
				}
			}
			switch m.Verb {
			case "OK":
				// A parent node acking our registration: upgrade the
				// uplink per granted cap — mux puts samples on a
				// flow-controlled stream, tbatch collapses each drain
				// cycle into one frame.
				caps := wire.ParseCaps(m.Get("caps"))
				n.mu.Lock()
				if n.up == up {
					if caps[wire.CapMux] && n.upMux == nil {
						n.upMux = wire.NewMux(up, wire.MuxConfig{Registry: n.reg, ByteWindow: caps[wire.CapByteWin]})
					}
					if caps[wire.CapTBatch] {
						n.upBatch = true
					}
				}
				n.mu.Unlock()
			case "RUN":
				n.multicastRun()
			}
		}
	}()
	return nil
}

// upstreamLost reacts to a dead parent connection: drop it and start
// (at most one) background reconnect loop.
func (n *Node) upstreamLost(up *wire.Conn) {
	n.mu.Lock()
	if n.closed || n.up != up {
		n.mu.Unlock()
		return
	}
	n.up = nil
	x := n.upMux
	n.upMux = nil
	n.upBatch = false
	if n.reconnecting {
		n.mu.Unlock()
		if x != nil {
			x.Fail(nil)
		}
		return
	}
	n.reconnecting = true
	n.mu.Unlock()
	if x != nil {
		// Wake any flush blocked on window credits the dead parent will
		// never grant.
		x.Fail(nil)
	}
	up.Close()
	n.reg.Counter("mrnet.up.reconnects").Inc()
	n.wg.Add(1)
	go n.reconnectLoop()
}

func (n *Node) reconnectLoop() {
	defer n.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		if err := n.connectUpstream(true); err == nil {
			return
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// multicastRun forwards the front-end's RUN to every child, including
// children that register later.
func (n *Node) multicastRun() {
	n.mu.Lock()
	n.runRecvd = true
	conns := make([]*wire.Conn, 0, len(n.children))
	for _, c := range n.children {
		if !c.gone {
			conns = append(conns, c.conn)
		}
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Send(wire.NewMessage("RUN"))
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.cfg.Listener.Accept()
		if err != nil {
			return
		}
		go n.handleChild(c)
	}
}

// rejectChild replies with an ERROR frame naming the reason, then
// closes — a malformed registration must not be a silent drop.
func rejectChild(wc *wire.Conn, raw net.Conn, reason string) {
	wc.Send(wire.NewMessage("ERROR").Set("error", reason))
	raw.Close()
}

func (n *Node) handleChild(raw net.Conn) {
	wc := wire.NewConn(raw)
	wc.InstrumentRegistry(n.reg)
	first, err := wc.Recv()
	if err != nil {
		raw.Close()
		return
	}
	// A connection may open with STATS instead of REGISTER: a
	// monitoring client (tdptop) polling the subtree rollup.
	if first.Verb == "STATS" {
		n.serveStatsConn(wc, raw, first)
		return
	}
	if first.Verb != "REGISTER" {
		rejectChild(wc, raw, fmt.Sprintf("mrnet: expected REGISTER, got %s", first.Verb))
		return
	}
	name := first.Get("daemon")
	if name == "" {
		rejectChild(wc, raw, "mrnet: REGISTER without daemon name")
		return
	}
	kind := first.Get("kind")
	if kind == "" {
		kind = "daemon"
	}
	resume := first.Get("resume") == "1"
	child := &childState{
		name:   name,
		host:   first.Get("host"),
		kind:   kind,
		conn:   wc,
		latest: make(map[string]paradyn.FuncStats),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		raw.Close()
		return
	}
	if old, ok := n.children[name]; ok {
		if old.done || (!resume && !old.gone) {
			n.mu.Unlock()
			rejectChild(wc, raw, fmt.Sprintf("mrnet: duplicate registration for %q", name))
			return
		}
		// Reconnect (resume, or replacing a downed host): inherit the
		// old function totals and telemetry streams as the starting
		// point so the reduction stays monotone while the child
		// re-publishes; cumulative values overwrite in place, so
		// nothing double-counts.
		child.latest = old.latest
		old.conn.Close()
	}
	replacing := n.children[name] != nil
	n.children[name] = child
	count := len(n.children)
	runAlready := n.runRecvd
	needUpstream := n.up == nil && !n.reconnecting && n.cfg.ExpectedChildren > 0 && count >= n.cfg.ExpectedChildren
	n.selfForce = true // topology changed: republish mrnet.tree.* promptly
	n.mu.Unlock()

	// Grant the mux and tbatch caps to children that offered them
	// (child nodes do; plain daemons and old binaries never see the
	// ack). The mux runs receive-side here: Accept meters the child's
	// stamped samples and returns window credit as WINUPs. tbatch lets
	// the child pack each drain cycle into one TBATCH frame.
	var cm *wire.Mux
	childCaps := wire.ParseCaps(first.Get("caps"))
	var granted []string
	if childCaps[wire.CapMux] {
		// Byte-granular windows when the child offers them: a sample
		// burst is then bounded in bytes, so one fat TBATCH cannot eat
		// the same window as dozens of small flushes.
		cm = wire.NewMux(wc, wire.MuxConfig{Registry: n.reg, ByteWindow: childCaps[wire.CapByteWin]})
		granted = append(granted, wire.CapMux)
		if childCaps[wire.CapByteWin] {
			granted = append(granted, wire.CapByteWin)
		}
	}
	if childCaps[wire.CapTBatch] {
		granted = append(granted, wire.CapTBatch)
	}
	if len(granted) > 0 {
		wc.Send(wire.NewMessage("OK").Set("caps", strings.Join(granted, ",")))
	}

	if replacing {
		n.streams.revive(name)
	}
	if needUpstream {
		if err := n.connectUpstream(false); err != nil {
			// Parent unreachable right now: keep absorbing children and
			// retry in the background. The retry registers with resume
			// semantics, which a parent that never saw us treats as a
			// fresh registration.
			n.mu.Lock()
			if !n.closed && n.up == nil && !n.reconnecting {
				n.reconnecting = true
				n.wg.Add(1)
				go n.reconnectLoop()
			}
			n.mu.Unlock()
		}
	}
	if runAlready {
		wc.Send(wire.NewMessage("RUN"))
	}

	// The receive loop owns its message and dispatches synchronously, so
	// RecvInto's map reuse applies: at fan-in rates (64 daemons × one
	// sample per cycle) the per-message allocation is measurable.
	m := new(wire.Message)
	for {
		if err := wc.RecvInto(m); err != nil {
			n.childGone(child)
			raw.Close()
			return
		}
		if cm != nil {
			if _, handled := cm.Accept(m); handled {
				continue
			}
		}
		switch m.Verb {
		case "SAMPLE":
			calls, _ := strconv.ParseInt(m.Get("calls"), 10, 64)
			us, _ := strconv.ParseInt(m.Get("time_us"), 10, 64)
			n.mu.Lock()
			child.latest[m.Get("fn")] = paradyn.FuncStats{Calls: calls, TimeMicros: us}
			n.fnsDirty = true
			n.mu.Unlock()
		case "TBATCH":
			// One whole drain cycle from a batching child: its dirty
			// profile functions and telemetry streams in one frame.
			profs, tels, err := wire.ParseTBatch(m)
			if err != nil {
				wc.Send(wire.NewMessage("ERROR").Set("error", err.Error()))
				continue
			}
			n.mu.Lock()
			for _, p := range profs {
				child.latest[p.Fn] = paradyn.FuncStats{Calls: p.Calls, TimeMicros: p.TimeUS}
			}
			if len(profs) > 0 {
				n.fnsDirty = true
			}
			n.mu.Unlock()
			needFlush := false
			for _, ts := range tels {
				// Batched items carry no per-item trace spans — the
				// tradeoff of one frame per cycle; the cycle itself is
				// still counted by the flush metrics.
				if n.streams.update(child.name, ts, "", "") {
					needFlush = true
				}
			}
			if needFlush {
				n.flush()
			}
		case "TSAMPLE":
			ts, err := wire.ParseTSample(m)
			if err != nil {
				wc.Send(wire.NewMessage("ERROR").Set("error", err.Error()))
				continue
			}
			tid, sid := m.Trace()
			if tid != "" {
				// Record this hop so the daemon→root chain has no gaps;
				// the uplink flush will continue the chain from here.
				sp := n.tracer.StartChild("mrnet.tsample", tid, sid)
				sp.End()
				sid = sp.SpanID()
			}
			if n.streams.update(child.name, ts, tid, sid) {
				// Dirty set full: flush before absorbing more, which
				// stalls this child's connection — back-pressure.
				n.flush()
			}
		case "STATS":
			n.replyStats(wc, m)
		case "DONE":
			n.mu.Lock()
			if !child.done {
				child.done = true
				n.doneCount++
				if n.exitAgg == "" {
					n.exitAgg = m.Get("status")
				} else if m.Get("status") != n.exitAgg {
					n.exitAgg = "mixed"
				}
			}
			allDone := n.cfg.ExpectedChildren > 0 && n.doneCount >= n.cfg.ExpectedChildren
			if allDone {
				n.selfForce = true // final flush carries the full self state
			}
			n.mu.Unlock()
			if allDone {
				n.flush()
				n.sendDone()
			}
		}
	}
}

// childGone handles a connection that died before DONE: the host is
// down. Its profile totals stay in the reduction (monotone); its
// telemetry streams retire (counters/hists keep counting, gauges drop
// out); the failure surfaces as an mrnet.hosts.down counter and a
// synthetic host_down function sample that sums up the tree like any
// profile entry.
func (n *Node) childGone(child *childState) {
	n.mu.Lock()
	if n.closed || child.done || child.gone || n.children[child.name] != child {
		n.mu.Unlock()
		return
	}
	child.gone = true
	s := n.synthetic["host_down"]
	s.Calls++
	n.synthetic["host_down"] = s
	n.fnsDirty = true
	n.selfForce = true // hosts.down must not wait for the self cadence
	n.mu.Unlock()
	n.reg.Counter("mrnet.hosts.down").Inc()
	n.streams.retire(child.name)
}

// serveStatsConn answers STATS queries on a connection that never
// registered — a monitoring client. It loops until the client hangs
// up.
func (n *Node) serveStatsConn(wc *wire.Conn, raw net.Conn, first *wire.Message) {
	m := first
	for {
		n.replyStats(wc, m)
		next, err := wc.Recv()
		if err != nil || next.Verb != "STATS" {
			raw.Close()
			return
		}
		m = next
	}
}

// replyStats answers one STATS message: scope=tree returns the merged
// subtree rollup, anything else the node's own registry. The reply
// shape (STATSV daemon= json=) matches the attrspace servers, so one
// monitoring client can poll either.
func (n *Node) replyStats(wc *wire.Conn, m *wire.Message) {
	var snap telemetry.Snapshot
	if m.Get("scope") == "tree" {
		snap = n.TreeSnapshot()
	} else {
		snap = n.reg.Snapshot()
	}
	data, err := json.Marshal(snap)
	if err != nil {
		wc.Send(wire.NewMessage("ERROR").Set("error", err.Error()))
		return
	}
	reply := wire.NewMessage("STATSV").
		Set("daemon", n.cfg.Name).
		Set("json", string(data))
	if id := m.Get("id"); id != "" {
		reply.Set("id", id)
	}
	wc.Send(reply)
}

// TreeSnapshot returns the merged telemetry of the whole subtree:
// every child's published registry (recursively — child nodes stream
// their own aggregates) plus this node's. This is what `STATS
// scope=tree` serves.
func (n *Node) TreeSnapshot() telemetry.Snapshot {
	n.publishSelf()
	return n.streams.snapshot()
}

// Topology lists the node's direct children, sorted by name.
func (n *Node) Topology() []ChildInfo {
	n.mu.Lock()
	out := make([]ChildInfo, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, ChildInfo{Name: c.name, Host: c.host, Kind: c.kind, Done: c.done, Gone: c.gone})
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// publishSelf injects the node's own registry changes and topology
// into the stream plane, so they aggregate up the tree like any
// daemon's telemetry.
func (n *Node) publishSelf() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	cur := n.reg.Snapshot()
	diff := telemetry.SnapshotDiff(n.lastSelf, cur)
	n.lastSelf = cur
	daemons := 0
	for _, c := range n.children {
		if c.kind == "daemon" && !c.gone {
			daemons++
		}
	}
	n.mu.Unlock()
	for _, ts := range wire.AppendSnapshotSamples(nil, diff) {
		n.streams.inject(ts)
	}
	// Topology streams: direct daemon count sums to the pool total at
	// the root; depth is one more than the deepest child node reports.
	n.streams.inject(wire.TelemetrySample{
		Kind: wire.KindCounter, Name: "mrnet.tree.daemons", Value: int64(daemons),
	})
	childDepth := n.streams.childMax(streamKey{kind: wire.KindGaugeMax, name: "mrnet.tree.depth"})
	n.streams.inject(wire.TelemetrySample{
		Kind: wire.KindGaugeMax, Name: "mrnet.tree.depth", Value: childDepth + 1,
	})
}

// reduce recomputes per-function totals from every child's latest
// sample plus the node's synthetic entries (host_down).
func (n *Node) reduce() map[string]paradyn.FuncStats {
	totals := make(map[string]paradyn.FuncStats)
	for fn, s := range n.synthetic {
		totals[fn] = s
	}
	for _, c := range n.children {
		for fn, s := range c.latest {
			t := totals[fn]
			t.Calls += s.Calls
			t.TimeMicros += s.TimeMicros
			totals[fn] = t
		}
	}
	return totals
}

func (n *Node) flushLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.FlushInterval)
	defer ticker.Stop()
	for range ticker.C {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		n.flush()
	}
}

// Flush drives one flush cycle by hand: reduced samples and telemetry
// aggregates that changed since the last cycle go upstream now. Safe
// to call from any goroutine, concurrently with the timer-driven
// flushLoop. Harnesses configure a very long FlushInterval and call
// this (bottom-up across a tree — see Tree.FlushUp) so convergence is
// a function of flush rounds, not wall-clock timing.
func (n *Node) Flush() { n.flush() }

// flush sends upstream, in one corked burst, every function whose
// reduced value changed and every telemetry stream whose aggregate
// changed. With the parent gone it leaves state dirty for the
// reconnect resync.
func (n *Node) flush() {
	n.mu.Lock()
	doSelf := n.selfForce || n.selfCount <= 0
	if doSelf {
		n.selfForce = false
		n.selfCount = n.selfEvery
	}
	n.selfCount--
	n.mu.Unlock()
	if doSelf {
		n.publishSelf()
	}
	n.mu.Lock()
	up := n.up
	upX := n.upMux
	batch := n.upBatch
	if up == nil || n.closed {
		n.mu.Unlock()
		return
	}
	var reduced map[string]paradyn.FuncStats
	var dirty []string
	if n.fnsDirty {
		// Recomputing the profile reduction walks every child's latest
		// map; skip the walk entirely on the (steady-state) cycles where
		// no SAMPLE arrived, since the totals cannot have changed.
		n.fnsDirty = false
		reduced = n.reduce()
		for fn, s := range reduced {
			if n.totals[fn] != s {
				n.totals[fn] = s
				dirty = append(dirty, fn)
			}
		}
	}
	n.mu.Unlock()
	items := n.streams.takeDirty()
	if len(dirty) == 0 && len(items) == 0 {
		return
	}
	n.streams.met.flushes.Inc()
	sort.Strings(dirty)
	// With a muxed uplink, samples ride the flow-controlled samples
	// stream: a slow parent throttles this node without the unbounded
	// buffering a bare connection would accumulate. SendOn flushes the
	// cork before blocking on credits, so the two compose safely.
	send := up.Send
	if upX != nil {
		send = func(m *wire.Message) error { return upX.SendOn(wire.StreamSamples, m) }
	}
	if batch {
		// CapTBatch uplink: the drain cycle's dirty profile functions
		// and untraced telemetry streams leave as one TBATCH frame. This
		// is what keeps a reduction level from costing more frames than
		// it saves: without it the self-published registry diffs alone
		// keep ~6 streams dirty per node per cycle, and each level of
		// the tree multiplies that into per-stream frames. Items
		// carrying a trace context stay on individual TSAMPLEs — the
		// per-hop span chain is the point of stamping them, and they are
		// rare enough not to matter for frame rate.
		profs := make([]wire.BatchProfileSample, 0, len(dirty))
		for _, fn := range dirty {
			s := reduced[fn]
			profs = append(profs, wire.BatchProfileSample{Fn: fn, Calls: s.Calls, TimeUS: s.TimeMicros})
		}
		tels := make([]wire.TelemetrySample, 0, len(items))
		var traced []flushItem
		for _, it := range items {
			if it.tid != "" {
				traced = append(traced, it)
				continue
			}
			tels = append(tels, it.sample)
		}
		up.Cork()
		var err error
		if len(profs)+len(tels) > 0 {
			m, merr := wire.EncodeTBatch(profs, tels)
			if merr == nil {
				err = send(m)
			}
		}
		for _, it := range traced {
			if err != nil {
				break
			}
			msg, merr := it.sample.Message()
			if merr != nil {
				continue
			}
			sp := n.tracer.StartChild("mrnet.flush", it.tid, it.sid)
			msg.SetTrace(it.tid, sp.SpanID())
			sp.End()
			err = send(msg)
		}
		if uerr := up.Uncork(); err == nil {
			err = uerr
		}
		if err != nil {
			n.streams.met.lost.Add(int64(len(items)))
			n.upstreamLost(up)
		}
		return
	}
	up.Cork()
	var err error
	for _, fn := range dirty {
		s := reduced[fn]
		if err = send(wire.NewMessage("SAMPLE").
			Set("fn", fn).
			Set("calls", strconv.FormatInt(s.Calls, 10)).
			Set("time_us", strconv.FormatInt(s.TimeMicros, 10))); err != nil {
			break
		}
	}
	if err == nil {
		for _, it := range items {
			msg, merr := it.sample.Message()
			if merr != nil {
				continue
			}
			if it.tid != "" {
				// Continue the daemon's trace across the uplink hop.
				sp := n.tracer.StartChild("mrnet.flush", it.tid, it.sid)
				msg.SetTrace(it.tid, sp.SpanID())
				sp.End()
			}
			if err = send(msg); err != nil {
				break
			}
		}
	}
	if uerr := up.Uncork(); err == nil {
		err = uerr
	}
	if err != nil {
		// These aggregates never reached the parent. The reconnect
		// resync (dirtyAll) will re-publish current values; the lost
		// counter records that a gap happened.
		n.streams.met.lost.Add(int64(len(items)))
		n.upstreamLost(up)
	}
}

func (n *Node) sendDone() {
	n.mu.Lock()
	up := n.up
	status := n.exitAgg
	done := n.ranSent
	n.ranSent = true
	n.mu.Unlock()
	if up == nil || done {
		return
	}
	up.Send(wire.NewMessage("DONE").Set("status", status))
	close(n.sessionDone)
}

// SessionDone returns a channel closed once every expected child has
// reported DONE and the aggregate DONE has been written upstream. Use
// it to shut the node down without racing the final flush.
func (n *Node) SessionDone() <-chan struct{} { return n.sessionDone }

// ChildCount reports registered children.
func (n *Node) ChildCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.children)
}

// DoneCount reports children that sent DONE.
func (n *Node) DoneCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.doneCount
}

// Close tears the node down (children and upstream).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	children := make([]*childState, 0, len(n.children))
	for _, c := range n.children {
		children = append(children, c)
	}
	up := n.up
	n.mu.Unlock()
	n.cfg.Listener.Close()
	for _, c := range children {
		c.conn.Close()
	}
	if up != nil {
		up.Close()
	}
}

// AuxService adapts a single reduction node to the RM auxiliary
// service interface (toolapi.AuxFactory): the resource manager's
// starter launches it with the front-end address as the parent, and
// the tool daemon is given the node's address instead — transparent
// interposition. fanIn is how many daemons the node waits for before
// registering upstream and how many DONEs complete the session (1 for
// a sequential job's single daemon).
func AuxService(fanIn int) func(env toolapi.Env, args []string, parentAddr string) (string, func(), error) {
	if fanIn < 1 {
		fanIn = 1
	}
	return func(env toolapi.Env, args []string, parentAddr string) (string, func(), error) {
		if parentAddr == "" {
			return "", nil, errors.New("mrnet: aux service needs a front-end address (set +FrontendAddr)")
		}
		var l net.Listener
		var err error
		var dial DialFunc
		if env.Dial != nil {
			// Simulated network: bind on the execution host.
			dial = func(addr string) (net.Conn, error) { return env.Dial(addr) }
		}
		l, err = listenFor(env)
		if err != nil {
			return "", nil, err
		}
		name := fmt.Sprintf("mrnet-%s", env.Context)
		node, err := NewNode(Config{
			Name:             name,
			Listener:         l,
			ParentAddr:       parentAddr,
			Dial:             dial,
			ExpectedChildren: fanIn,
			// A named registry/tracer: the RM-launched node's own
			// telemetry flows up to the front-end like any daemon's.
			Registry: telemetry.NewRegistry(),
			Tracer:   telemetry.NewTracer(name),
		})
		if err != nil {
			return "", nil, err
		}
		shutdown := func() {
			// Let the session's final reduction and DONE drain before
			// tearing the node down.
			select {
			case <-node.SessionDone():
			case <-time.After(5 * time.Second):
			}
			node.Close()
		}
		return node.Addr(), shutdown, nil
	}
}

// listenFor binds a listener on the execution host: loopback TCP by
// default; the host's simulated network when the machine lives there.
func listenFor(env toolapi.Env) (net.Listener, error) {
	if env.NetListen != nil {
		return env.NetListen()
	}
	return net.Listen("tcp", "127.0.0.1:0")
}
