// Package mrnet implements a software multicast/reduction network for
// scalable tools — the auxiliary-service kind the paper requires the
// resource manager to be able to launch ("software multicast/reduction
// networks are crucial to scalable tool use", §2, citing MRNet). With
// hundreds of daemons, a front-end cannot hold one connection per
// daemon; a tree of internal nodes multicasts control downstream and
// reduces data upstream.
//
// A Node interposes transparently on the paradyn front-end protocol:
//
//   - downstream it acts like a front-end: accepts daemon REGISTER
//     messages, forwards the RUN command, receives SAMPLE/DONE;
//   - upstream it acts like a single daemon: registers itself as an
//     aggregate, forwards reduced samples, and reports DONE when every
//     child is done.
//
// Reduction sums per-function call counts and times across children —
// exactly the merge the front-end would do, moved into the tree.
// Nodes compose: a node's parent may be another node, forming trees of
// any fan-in and depth.
package mrnet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"tdp/internal/paradyn"
	"tdp/internal/toolapi"
	"tdp/internal/wire"
)

// DialFunc opens the upstream connection (to the parent node or the
// real front-end).
type DialFunc func(addr string) (net.Conn, error)

// Config parameterizes a Node.
type Config struct {
	// Name identifies this node in its upstream registration.
	Name string
	// Listener accepts downstream (daemon or child-node) connections.
	Listener net.Listener
	// ParentAddr is the upstream address (front-end or parent node).
	ParentAddr string
	// Dial opens the upstream connection; nil uses TCP.
	Dial DialFunc
	// FlushInterval is how often reduced samples flow upstream.
	// Zero means 5ms.
	FlushInterval time.Duration
	// ExpectedChildren, when > 0, delays the upstream REGISTER until
	// that many children have registered, so the aggregate announces
	// itself once, completely. Zero registers upstream immediately.
	ExpectedChildren int
}

// Node is one process of the reduction network.
type Node struct {
	cfg Config

	mu          sync.Mutex
	up          *wire.Conn
	children    map[string]*childState
	totals      map[string]paradyn.FuncStats
	doneCount   int
	exitAgg     string
	closed      bool
	ranSent     bool
	runRecvd    bool
	upReady     chan struct{}
	sessionDone chan struct{}
	wg          sync.WaitGroup
}

type childState struct {
	name string
	conn *wire.Conn
	// latest per-function sample from this child; reduction recomputes
	// totals from the latest value of every child, so repeated samples
	// do not double-count.
	latest map[string]paradyn.FuncStats
	done   bool
}

// ErrNoParent is returned when the node cannot reach its parent.
var ErrNoParent = errors.New("mrnet: cannot reach parent")

// NewNode starts a node. It begins accepting children immediately and
// connects upstream (immediately, or after ExpectedChildren register).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Listener == nil {
		return nil, errors.New("mrnet: Config.Listener is required")
	}
	if cfg.ParentAddr == "" {
		return nil, errors.New("mrnet: Config.ParentAddr is required")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.Name == "" {
		cfg.Name = "mrnet-node"
	}
	n := &Node{
		cfg:         cfg,
		children:    make(map[string]*childState),
		totals:      make(map[string]paradyn.FuncStats),
		upReady:     make(chan struct{}),
		sessionDone: make(chan struct{}),
	}
	if cfg.ExpectedChildren <= 0 {
		if err := n.connectUpstream(); err != nil {
			cfg.Listener.Close()
			return nil, err
		}
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.flushLoop()
	return n, nil
}

// Addr returns the address daemons (or child nodes) should dial.
func (n *Node) Addr() string { return n.cfg.Listener.Addr().String() }

func (n *Node) connectUpstream() error {
	raw, err := n.cfg.Dial(n.cfg.ParentAddr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoParent, err)
	}
	up := wire.NewConn(raw)
	n.mu.Lock()
	children := len(n.children)
	n.up = up
	n.mu.Unlock()
	reg := wire.NewMessage("REGISTER").
		Set("daemon", n.cfg.Name).
		Set("host", "mrnet").
		Set("executable", fmt.Sprintf("aggregate(%d children)", children)).
		SetInt("pid", 0).
		SetInt("rank", 0)
	if err := up.Send(reg); err != nil {
		return err
	}
	close(n.upReady)
	// Upstream RUN handling: multicast to children.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			m, err := up.Recv()
			if err != nil {
				return
			}
			if m.Verb == "RUN" {
				n.multicastRun()
			}
		}
	}()
	return nil
}

// multicastRun forwards the front-end's RUN to every child, including
// children that register later.
func (n *Node) multicastRun() {
	n.mu.Lock()
	n.runRecvd = true
	conns := make([]*wire.Conn, 0, len(n.children))
	for _, c := range n.children {
		conns = append(conns, c.conn)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Send(wire.NewMessage("RUN"))
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.cfg.Listener.Accept()
		if err != nil {
			return
		}
		go n.handleChild(c)
	}
}

func (n *Node) handleChild(raw net.Conn) {
	wc := wire.NewConn(raw)
	reg, err := wc.Recv()
	if err != nil || reg.Verb != "REGISTER" {
		raw.Close()
		return
	}
	child := &childState{
		name:   reg.Get("daemon"),
		conn:   wc,
		latest: make(map[string]paradyn.FuncStats),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		raw.Close()
		return
	}
	n.children[child.name] = child
	count := len(n.children)
	runAlready := n.runRecvd
	needUpstream := n.up == nil && n.cfg.ExpectedChildren > 0 && count >= n.cfg.ExpectedChildren
	n.mu.Unlock()

	if needUpstream {
		if err := n.connectUpstream(); err != nil {
			raw.Close()
			return
		}
	}
	if runAlready {
		wc.Send(wire.NewMessage("RUN"))
	}

	for {
		m, err := wc.Recv()
		if err != nil {
			raw.Close()
			return
		}
		switch m.Verb {
		case "SAMPLE":
			calls, _ := strconv.ParseInt(m.Get("calls"), 10, 64)
			us, _ := strconv.ParseInt(m.Get("time_us"), 10, 64)
			n.mu.Lock()
			child.latest[m.Get("fn")] = paradyn.FuncStats{Calls: calls, TimeMicros: us}
			n.mu.Unlock()
		case "DONE":
			n.mu.Lock()
			if !child.done {
				child.done = true
				n.doneCount++
				if n.exitAgg == "" {
					n.exitAgg = m.Get("status")
				} else if m.Get("status") != n.exitAgg {
					n.exitAgg = "mixed"
				}
			}
			allDone := n.cfg.ExpectedChildren > 0 && n.doneCount >= n.cfg.ExpectedChildren
			n.mu.Unlock()
			if allDone {
				n.flush()
				n.sendDone()
			}
		}
	}
}

// reduce recomputes per-function totals from every child's latest
// sample.
func (n *Node) reduce() map[string]paradyn.FuncStats {
	totals := make(map[string]paradyn.FuncStats)
	for _, c := range n.children {
		for fn, s := range c.latest {
			t := totals[fn]
			t.Calls += s.Calls
			t.TimeMicros += s.TimeMicros
			totals[fn] = t
		}
	}
	return totals
}

func (n *Node) flushLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.FlushInterval)
	defer ticker.Stop()
	for range ticker.C {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		n.flush()
	}
}

// flush sends upstream any function whose reduced value changed.
func (n *Node) flush() {
	n.mu.Lock()
	up := n.up
	if up == nil || n.closed {
		n.mu.Unlock()
		return
	}
	reduced := n.reduce()
	var dirty []string
	for fn, s := range reduced {
		if n.totals[fn] != s {
			n.totals[fn] = s
			dirty = append(dirty, fn)
		}
	}
	n.mu.Unlock()
	sort.Strings(dirty)
	for _, fn := range dirty {
		s := reduced[fn]
		up.Send(wire.NewMessage("SAMPLE").
			Set("fn", fn).
			Set("calls", strconv.FormatInt(s.Calls, 10)).
			Set("time_us", strconv.FormatInt(s.TimeMicros, 10)))
	}
}

func (n *Node) sendDone() {
	n.mu.Lock()
	up := n.up
	status := n.exitAgg
	done := n.ranSent
	n.ranSent = true
	n.mu.Unlock()
	if up == nil || done {
		return
	}
	up.Send(wire.NewMessage("DONE").Set("status", status))
	close(n.sessionDone)
}

// SessionDone returns a channel closed once every expected child has
// reported DONE and the aggregate DONE has been written upstream. Use
// it to shut the node down without racing the final flush.
func (n *Node) SessionDone() <-chan struct{} { return n.sessionDone }

// ChildCount reports registered children.
func (n *Node) ChildCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.children)
}

// DoneCount reports children that sent DONE.
func (n *Node) DoneCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.doneCount
}

// Close tears the node down (children and upstream).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	children := make([]*childState, 0, len(n.children))
	for _, c := range n.children {
		children = append(children, c)
	}
	up := n.up
	n.mu.Unlock()
	n.cfg.Listener.Close()
	for _, c := range children {
		c.conn.Close()
	}
	if up != nil {
		up.Close()
	}
}

// AuxService adapts a single reduction node to the RM auxiliary
// service interface (toolapi.AuxFactory): the resource manager's
// starter launches it with the front-end address as the parent, and
// the tool daemon is given the node's address instead — transparent
// interposition. fanIn is how many daemons the node waits for before
// registering upstream and how many DONEs complete the session (1 for
// a sequential job's single daemon).
func AuxService(fanIn int) func(env toolapi.Env, args []string, parentAddr string) (string, func(), error) {
	if fanIn < 1 {
		fanIn = 1
	}
	return func(env toolapi.Env, args []string, parentAddr string) (string, func(), error) {
		if parentAddr == "" {
			return "", nil, errors.New("mrnet: aux service needs a front-end address (set +FrontendAddr)")
		}
		var l net.Listener
		var err error
		var dial DialFunc
		if env.Dial != nil {
			// Simulated network: bind on the execution host.
			dial = func(addr string) (net.Conn, error) { return env.Dial(addr) }
		}
		l, err = listenFor(env)
		if err != nil {
			return "", nil, err
		}
		node, err := NewNode(Config{
			Name:             fmt.Sprintf("mrnet-%s", env.Context),
			Listener:         l,
			ParentAddr:       parentAddr,
			Dial:             dial,
			ExpectedChildren: fanIn,
		})
		if err != nil {
			return "", nil, err
		}
		shutdown := func() {
			// Let the session's final reduction and DONE drain before
			// tearing the node down.
			select {
			case <-node.SessionDone():
			case <-time.After(5 * time.Second):
			}
			node.Close()
		}
		return node.Addr(), shutdown, nil
	}
}

// listenFor binds a listener on the execution host: loopback TCP by
// default; the host's simulated network when the machine lives there.
func listenFor(env toolapi.Env) (net.Listener, error) {
	if env.NetListen != nil {
		return env.NetListen()
	}
	return net.Listen("tcp", "127.0.0.1:0")
}

// BuildTree constructs a balanced reduction tree over TCP loopback:
// `leaves` leaf nodes each expecting `fanIn` daemons, all feeding one
// root that reports to parentAddr. It returns the leaf addresses
// (round-robin daemons across them) and a shutdown function. With
// leaves == 1 the single node doubles as the root.
func BuildTree(parentAddr string, leaves, fanIn int, dial DialFunc) (leafAddrs []string, shutdown func(), err error) {
	if leaves < 1 {
		leaves = 1
	}
	var nodes []*Node
	closeAll := func() {
		for _, n := range nodes {
			n.Close()
		}
	}
	rootParent := parentAddr
	if leaves > 1 {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		root, err := NewNode(Config{
			Name: "mrnet-root", Listener: l, ParentAddr: parentAddr,
			Dial: dial, ExpectedChildren: leaves,
		})
		if err != nil {
			return nil, nil, err
		}
		nodes = append(nodes, root)
		rootParent = root.Addr()
	}
	for i := 0; i < leaves; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		name := fmt.Sprintf("mrnet-leaf%d", i)
		parent := rootParent
		if leaves == 1 {
			name = "mrnet-root"
			parent = parentAddr
		}
		leaf, err := NewNode(Config{
			Name: name, Listener: l, ParentAddr: parent,
			Dial: dial, ExpectedChildren: fanIn,
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		nodes = append(nodes, leaf)
		leafAddrs = append(leafAddrs, leaf.Addr())
	}
	return leafAddrs, closeAll, nil
}
