package mrnet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/trace"
)

// TestAuxServiceLaunchedByRM is the §2 auxiliary-service experiment:
// the submit file names an aux service; the starter launches it
// between paradynd and the front-end; the daemon connects to the
// service transparently (it just reads AttrFrontendAddr); the
// front-end sees the aggregate.
func TestAuxServiceLaunchedByRM(t *testing.T) {
	rec := trace.New()
	fe := newFE(t)

	pool := condor.NewPool(condor.PoolOptions{Trace: rec, NegotiationTimeout: 5 * time.Second})
	t.Cleanup(pool.Close)
	if _, err := pool.AddMachine(condor.MachineConfig{
		Name: "node1", Arch: "INTEL", OpSys: "LINUX", Memory: 128,
	}); err != nil {
		t.Fatalf("AddMachine: %v", err)
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterAux("mrnet", AuxService(1))
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(20)
		return prog, procsim.PhasedSymbols(phases)
	})

	submit := fmt.Sprintf(`executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-a%%pid"
+AuxServiceCmd = "mrnet"
+FrontendAddr = "%s"
queue
`, fe.Addr())
	jobs, err := pool.Submit(submit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(30 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}

	// The front-end's one daemon is the mrnet aggregate, not paradynd.
	daemons := fe.Daemons()
	if len(daemons) != 1 || !strings.HasPrefix(daemons[0], "mrnet-") {
		t.Fatalf("daemons = %v, want one mrnet aggregate", daemons)
	}
	// The reduced profile still carries the real data.
	stats := fe.AllStats()
	if stats["compute_forces"].Calls != 20 {
		t.Errorf("compute_forces calls = %d, want 20\n%s", stats["compute_forces"].Calls, fe.Report())
	}
	if fn, _, ok := fe.Bottleneck(); !ok || fn != "compute_forces" {
		t.Errorf("bottleneck through the aux service = %q, %v", fn, ok)
	}
	// The RM launched the service (trace evidence).
	if !rec.Happened("starter", "spawn_aux") {
		t.Error("starter never recorded spawn_aux")
	}
	if !rec.Before("starter", "spawn_aux", "starter", "spawn_tool") {
		t.Error("aux service was not up before the tool launched")
	}
}

func TestAuxServiceRequiresFrontend(t *testing.T) {
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 2 * time.Second})
	t.Cleanup(pool.Close)
	pool.AddMachine(condor.MachineConfig{Name: "m", Arch: "INTEL", OpSys: "LINUX", Memory: 128})
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterAux("mrnet", AuxService(1))
	pool.Registry().RegisterProgram("x", func(args []string) (procsim.Program, []string) {
		return procsim.NewExitingProgram(0), procsim.StdSymbols
	})
	jobs, err := pool.Submit(`executable = x
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+AuxServiceCmd = "mrnet"
queue
`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-jobs[0].Done()
	if jobs[0].Status() != condor.StatusHeld {
		t.Fatalf("status = %v, want Held", jobs[0].Status())
	}
	if !strings.Contains(jobs[0].HoldReason(), "front-end address") {
		t.Errorf("hold reason = %q", jobs[0].HoldReason())
	}
}

func TestAuxServiceUnknownName(t *testing.T) {
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 2 * time.Second})
	t.Cleanup(pool.Close)
	pool.AddMachine(condor.MachineConfig{Name: "m", Arch: "INTEL", OpSys: "LINUX", Memory: 128})
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("x", func(args []string) (procsim.Program, []string) {
		return procsim.NewExitingProgram(0), procsim.StdSymbols
	})
	jobs, _ := pool.Submit(`executable = x
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+AuxServiceCmd = "nosuch"
+FrontendAddr = "127.0.0.1:1"
queue
`)
	<-jobs[0].Done()
	if jobs[0].Status() != condor.StatusHeld {
		t.Fatalf("status = %v", jobs[0].Status())
	}
	if !strings.Contains(jobs[0].HoldReason(), "no such auxiliary service") {
		t.Errorf("hold reason = %q", jobs[0].HoldReason())
	}
}
