package mrnet

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/rmkit"
	"tdp/internal/wire"
)

// fakeDaemon registers with addr, waits for RUN, sends the given
// samples, then DONE.
func fakeDaemon(t *testing.T, addr, name string, samples map[string]paradyn.FuncStats, status string) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("%s: dial: %v", name, err)
	}
	wc := wire.NewConn(raw)
	if err := wc.Send(wire.NewMessage("REGISTER").Set("daemon", name).Set("host", "h").SetInt("pid", 1)); err != nil {
		t.Fatalf("%s: register: %v", name, err)
	}
	go func() {
		defer raw.Close()
		m, err := wc.Recv()
		if err != nil || m.Verb != "RUN" {
			t.Errorf("%s: expected RUN, got %v, %v", name, m, err)
			return
		}
		for fn, s := range samples {
			wc.Send(wire.NewMessage("SAMPLE").
				Set("fn", fn).
				Set("calls", fmt.Sprintf("%d", s.Calls)).
				Set("time_us", fmt.Sprintf("%d", s.TimeMicros)))
		}
		time.Sleep(10 * time.Millisecond) // let a flush cycle pass
		wc.Send(wire.NewMessage("DONE").Set("status", status))
		// Keep the connection open briefly so the node can flush.
		time.Sleep(50 * time.Millisecond)
	}()
}

func newFE(t *testing.T) *paradyn.FrontEnd {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
	if err != nil {
		t.Fatalf("NewFrontEnd: %v", err)
	}
	t.Cleanup(fe.Close)
	return fe
}

func TestSingleNodeReduction(t *testing.T) {
	fe := newFE(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	node, err := NewNode(Config{
		Name: "agg", Listener: l, ParentAddr: fe.Addr(), ExpectedChildren: 3,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	for i := 0; i < 3; i++ {
		fakeDaemon(t, node.Addr(), fmt.Sprintf("d%d", i), map[string]paradyn.FuncStats{
			"work": {Calls: 10, TimeMicros: 100},
			"io":   {Calls: int64(i), TimeMicros: int64(i * 5)},
		}, "exit(0)")
	}

	// The front-end sees exactly one (aggregate) daemon.
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	daemons := fe.Daemons()
	if len(daemons) != 1 || daemons[0] != "agg" {
		t.Fatalf("daemons = %v, want [agg]", daemons)
	}
	// Reduced stats are the sums.
	stats := fe.AllStats()
	if stats["work"].Calls != 30 || stats["work"].TimeMicros != 300 {
		t.Errorf("work = %+v, want 30 calls / 300us", stats["work"])
	}
	if stats["io"].Calls != 3 || stats["io"].TimeMicros != 15 {
		t.Errorf("io = %+v, want 3 calls / 15us", stats["io"])
	}
	if st, ok := fe.ExitStatus("agg"); !ok || st != "exit(0)" {
		t.Errorf("aggregate status = %q, %v", st, ok)
	}
	if node.ChildCount() != 3 || node.DoneCount() != 3 {
		t.Errorf("children/done = %d/%d", node.ChildCount(), node.DoneCount())
	}
}

func TestMixedExitStatuses(t *testing.T) {
	fe := newFE(t)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	node, err := NewNode(Config{
		Name: "agg", Listener: l, ParentAddr: fe.Addr(), ExpectedChildren: 2,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()
	fakeDaemon(t, node.Addr(), "ok", map[string]paradyn.FuncStats{"f": {Calls: 1}}, "exit(0)")
	fakeDaemon(t, node.Addr(), "bad", map[string]paradyn.FuncStats{"f": {Calls: 1}}, "exit(1)")
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	if st, _ := fe.ExitStatus("agg"); st != "mixed" {
		t.Errorf("aggregate status = %q, want mixed", st)
	}
}

func TestTwoLevelTree(t *testing.T) {
	fe := newFE(t)
	leafAddrs, shutdown, err := BuildTree(fe.Addr(), 2, 2, nil)
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	defer shutdown()
	if len(leafAddrs) != 2 {
		t.Fatalf("leafAddrs = %v", leafAddrs)
	}
	// Four daemons, two per leaf.
	for i := 0; i < 4; i++ {
		fakeDaemon(t, leafAddrs[i%2], fmt.Sprintf("d%d", i), map[string]paradyn.FuncStats{
			"work": {Calls: 5, TimeMicros: 50},
		}, "exit(0)")
	}
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	stats := fe.AllStats()
	if stats["work"].Calls != 20 || stats["work"].TimeMicros != 200 {
		t.Errorf("work = %+v, want 20 calls / 200us", stats["work"])
	}
	// One aggregate at the front-end regardless of tree size.
	if got := fe.Daemons(); len(got) != 1 {
		t.Errorf("daemons = %v", got)
	}
}

func TestRepeatedSamplesDoNotDoubleCount(t *testing.T) {
	// Daemons stream the same (monotone) sample repeatedly; the
	// reduction must track latest values, not accumulate deltas.
	fe := newFE(t)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	node, err := NewNode(Config{
		Name: "agg", Listener: l, ParentAddr: fe.Addr(), ExpectedChildren: 1,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	raw, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	wc.Send(wire.NewMessage("REGISTER").Set("daemon", "d0").Set("host", "h").SetInt("pid", 1))
	if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
		t.Fatalf("RUN: %v %v", m, err)
	}
	for i := 1; i <= 5; i++ {
		wc.Send(wire.NewMessage("SAMPLE").Set("fn", "work").
			Set("calls", fmt.Sprintf("%d", i*10)).
			Set("time_us", fmt.Sprintf("%d", i*100)))
		time.Sleep(3 * time.Millisecond)
	}
	wc.Send(wire.NewMessage("DONE").Set("status", "exit(0)"))
	if err := fe.WaitDone(1, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	stats := fe.AllStats()
	if stats["work"].Calls != 50 || stats["work"].TimeMicros != 500 {
		t.Errorf("work = %+v, want latest 50 calls / 500us (not a sum of the stream)", stats["work"])
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("NewNode without listener succeeded")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	if _, err := NewNode(Config{Listener: l}); err == nil {
		t.Error("NewNode without parent succeeded")
	}
	l2, _ := net.Listen("tcp", "127.0.0.1:0")
	if _, err := NewNode(Config{Listener: l2, ParentAddr: "127.0.0.1:1"}); err == nil {
		t.Error("NewNode with dead parent succeeded")
	}
}

func TestRealParadyndsThroughTree(t *testing.T) {
	// End-to-end: real paradyn daemons under the queue RM, streaming
	// through a reduction node to the front-end. The RM launches the
	// auxiliary service — the §2 AS bullet.
	fe := newFE(t)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	node, err := NewNode(Config{
		Name: "agg", Listener: l, ParentAddr: fe.Addr(), ExpectedChildren: 3,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	host, port, _ := net.SplitHostPort(node.Addr())
	rm, err := rmkit.NewQueueRM(3, nil)
	if err != nil {
		t.Fatalf("NewQueueRM: %v", err)
	}
	defer rm.Close()

	var jobs []*rmkit.QueuedJob
	for i := 0; i < 3; i++ {
		phases := []procsim.PhaseSpec{{Name: "work", Units: 2}}
		qj, err := rm.Enqueue(rmkit.JobSpec{
			Name:     "app",
			Program:  procsim.NewPhasedProgram(4, phases),
			Symbols:  procsim.PhasedSymbols(phases),
			Tool:     paradyn.Tool(),
			ToolArgs: []string{"-m" + host, "-p" + port, "-a%pid"},
			Timeout:  30 * time.Second,
		})
		if err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		jobs = append(jobs, qj)
	}
	for i, qj := range jobs {
		if st, err := qj.Wait(30 * time.Second); err != nil || st.Code != 0 {
			t.Fatalf("job %d = %v, %v", i, st, err)
		}
	}
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	stats := fe.AllStats()
	if stats["work"].Calls != 12 { // 3 daemons x 4 calls
		t.Errorf("reduced work calls = %d, want 12\n%s", stats["work"].Calls, paradyn.FormatTable(stats))
	}
	if len(fe.Daemons()) != 1 {
		t.Errorf("front-end sees %d daemons, want 1 aggregate", len(fe.Daemons()))
	}
	if !strings.Contains(fe.Report(), "work") {
		t.Errorf("report:\n%s", fe.Report())
	}
}
