package scenario

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/attr"
	"tdp/internal/attrspace"
	"tdp/internal/mrnet"
	"tdp/internal/netsim"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// This file holds the world builders: reusable compositions of the
// repo's layers that phases manipulate. A telemetry Plane is a netsim
// network carrying an mrnet reduction tree between a simulated daemon
// fleet and a counting front-end sink; a ShardedCASS is a pool of
// restartable CASS shard daemons behind a routing LASS. Both are pure
// library objects — no testing.T — so scenarios stay declarative.

// Sink is the front-end stand-in at the top of a telemetry plane: it
// accepts the root's connection and counts every message and verb.
// It deliberately never sends RUN — the simulated daemons don't wait
// for it, which keeps the fleet's client connections receive-free (no
// per-daemon reader goroutine at 10k+ hosts).
type Sink struct {
	l     net.Listener
	msgs  atomic.Int64
	conns atomic.Int64

	mu    sync.Mutex
	verbs map[string]int
}

// NewSink starts a sink on the listener.
func NewSink(l net.Listener) *Sink {
	s := &Sink{l: l, verbs: make(map[string]int)}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.conns.Add(1)
			go func() {
				wc := wire.NewConn(c)
				defer c.Close()
				for {
					m, err := wc.Recv()
					if err != nil {
						return
					}
					s.msgs.Add(1)
					s.mu.Lock()
					s.verbs[m.Verb]++
					s.mu.Unlock()
				}
			}()
		}
	}()
	return s
}

// Addr returns the sink's listen address.
func (s *Sink) Addr() string { return s.l.Addr().String() }

// Conns returns how many connections the sink has accepted — the
// front-end's fan-in, which a reduction tree must keep at 1.
func (s *Sink) Conns() int64 { return s.conns.Load() }

// Msgs returns the total messages received.
func (s *Sink) Msgs() int64 { return s.msgs.Load() }

// VerbCount returns how many messages of one verb arrived.
func (s *Sink) VerbCount(verb string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verbs[verb]
}

// Close stops accepting.
func (s *Sink) Close() { s.l.Close() }

// PlaneConfig sizes a telemetry plane.
type PlaneConfig struct {
	// Hosts is the daemon count; each gets its own simulated host.
	Hosts int
	// FanOut / Levels shape the reduction tree (see mrnet.TreeConfig).
	FanOut int
	Levels int
	// ChaosSeed, when non-zero, wraps the daemons' dials in a seeded
	// chaos injector cutting connections mid-stream.
	ChaosSeed     int64
	CutAfterBytes int
}

// Plane is a telemetry fan-in world: Hosts simulated daemons, a
// reduction tree on simulated "mrnet" hosts, and the counting Sink on
// a simulated "fe" host. Everything runs over netsim pipes, so a 10k+
// host plane consumes zero file descriptors.
type Plane struct {
	Net   *netsim.Network
	Sink  *Sink
	Tree  *mrnet.Tree
	Fleet *Fleet
	Chaos *netsim.Chaos
	cfg   PlaneConfig
}

// BuildPlane constructs the network, sink, tree, and (unregistered)
// fleet, and registers teardown on the run.
func BuildPlane(r *Run, cfg PlaneConfig) (*Plane, error) {
	nw := netsim.New()
	feHost := nw.AddHost("fe")
	feL, err := feHost.Listen(0)
	if err != nil {
		return nil, err
	}
	sink := NewSink(feL)

	// All tree nodes live on one "mrnet" host: their listeners bind
	// there, and their parent-ward dials originate there.
	mrHost := nw.AddHost("mrnet")
	tree, err := mrnet.BuildReductionTree(mrnet.TreeConfig{
		ParentAddr: sink.Addr(),
		Daemons:    cfg.Hosts,
		FanOut:     cfg.FanOut,
		Levels:     cfg.Levels,
		Dial:       mrHost.Dial,
		Listen:     func() (net.Listener, error) { return mrHost.Listen(0) },
		// Flushes are driven by Tree.FlushUp from the phases, so
		// rollup convergence is deterministic in flush rounds.
		FlushInterval: time.Hour,
	})
	if err != nil {
		sink.Close()
		return nil, err
	}

	p := &Plane{Net: nw, Sink: sink, Tree: tree, cfg: cfg}
	leafAddrs := tree.LeafAddrs()
	dial := func(i int, addr string) (net.Conn, error) {
		return nw.AddHost(hostName(i)).Dial(addr)
	}
	if cfg.ChaosSeed != 0 {
		cut := cfg.CutAfterBytes
		if cut == 0 {
			cut = 8 << 10
		}
		p.Chaos = netsim.NewChaos(netsim.ChaosConfig{Seed: cfg.ChaosSeed, CutAfterBytes: cut})
		inner := dial
		dial = func(i int, addr string) (net.Conn, error) {
			return p.Chaos.Dial(func(a string) (net.Conn, error) { return inner(i, a) })(addr)
		}
	}
	p.Fleet = NewFleet(cfg.Hosts, leafAddrs, dial)
	r.Defer(func() {
		p.Fleet.CloseAll()
		tree.Close()
		sink.Close()
	})
	return p, nil
}

// RootSnapshot flushes the tree bottom-up once and returns the root's
// merged subtree rollup.
func (p *Plane) RootSnapshot() telemetry.Snapshot {
	p.Tree.FlushUp()
	return p.Tree.Root().TreeSnapshot()
}

func hostName(i int) string { return fmt.Sprintf("h%04d", i) }

// shardServer is a CASS shard that can be killed (abrupt) or drained
// (graceful) and rebound on the same address with its attribute space
// — and therefore its contexts and seqs — intact: a daemon crash or
// rolling restart under a supervisor.
type shardServer struct {
	space *attr.Space
	addr  string
	idx   int
	total int

	mu  sync.Mutex
	srv *attrspace.Server
}

func newShardServer(idx, total int) (*shardServer, error) {
	s := &shardServer{space: attr.NewSpace(), idx: idx, total: total}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s.addr = l.Addr().String()
	s.srv = attrspace.NewServerWithSpace(s.space)
	if err := s.srv.SetShard(idx, total); err != nil {
		l.Close()
		return nil, err
	}
	go s.srv.Serve(l)
	return s, nil
}

// Kill closes the server abruptly.
func (s *shardServer) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
}

// Drain shuts down gracefully (CLOSE verb, in-flight replies finish).
func (s *shardServer) Drain(timeout time.Duration) {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	srv.Shutdown(ctx)
}

// Restart rebinds a fresh server on the same address and space.
func (s *shardServer) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var l net.Listener
	var err error
	for i := 0; i < 400; i++ {
		l, err = net.Listen("tcp", s.addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("rebind %s: %w", s.addr, err)
	}
	s.srv = attrspace.NewServerWithSpace(s.space)
	if err := s.srv.SetShard(s.idx, s.total); err != nil {
		l.Close()
		return err
	}
	go s.srv.Serve(l)
	return nil
}

// ShardedCASS is a partitioned central attribute space: n restartable
// shard daemons behind a routing LASS (hash routing, pooled group
// commit, scatter-gather, ErrShardDown degraded mode — DESIGN §13).
type ShardedCASS struct {
	Shards   []*shardServer
	Addrs    []string
	LASS     *attrspace.Server
	LASSAddr string
	// Contexts holds one context name per shard: Contexts[i] hashes
	// to shard i, so phases can aim load at a specific shard.
	Contexts []string
}

// BuildShardedCASS stands up n shards and the routing LASS, with a
// fast health heartbeat so kill-detection latency doesn't dominate
// scenario time. Teardown is registered on the run.
func BuildShardedCASS(r *Run, n int, heartbeat time.Duration) (*ShardedCASS, error) {
	sc := &ShardedCASS{}
	for i := 0; i < n; i++ {
		sh, err := newShardServer(i, n)
		if err != nil {
			return nil, err
		}
		sc.Shards = append(sc.Shards, sh)
		sc.Addrs = append(sc.Addrs, sh.addr)
	}
	spec := ""
	for i, a := range sc.Addrs {
		if i > 0 {
			spec += ","
		}
		spec += a
	}
	sc.LASS = attrspace.NewServer()
	sc.LASS.EnableGlobalCache(spec, attrspace.CacheConfig{
		SweepInterval:  50 * time.Millisecond,
		ShardHeartbeat: heartbeat,
	})
	addr, err := sc.LASS.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sc.LASSAddr = addr
	sc.Contexts = shardContexts(n)
	if sc.Contexts == nil {
		return nil, fmt.Errorf("could not find a context per shard")
	}
	r.Defer(func() {
		sc.LASS.Close()
		for _, sh := range sc.Shards {
			sh.Kill()
		}
	})
	return sc, nil
}

// shardContexts picks one job-style context name per shard of n.
func shardContexts(n int) []string {
	out := make([]string, n)
	found := 0
	for i := 0; found < n && i < 100000; i++ {
		name := fmt.Sprintf("job-%d", i)
		if idx := attrspace.ShardIndex(name, n); out[idx] == "" {
			out[idx] = name
			found++
		}
	}
	if found != n {
		return nil
	}
	return out
}
