package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Report is the JSON artifact of one scenario run: SCENARIO_<name>.json
// beside BENCH_attrspace.json. It records the seed (for replay), the
// pool size, pass/fail with the failure site, and per-phase counters
// and latency/throughput distributions.
type Report struct {
	Scenario    string        `json:"scenario"`
	Description string        `json:"description,omitempty"`
	Seed        int64         `json:"seed"`
	Hosts       int           `json:"hosts,omitempty"`
	Start       time.Time     `json:"start"`
	DurationMS  float64       `json:"duration_ms"`
	Passed      bool          `json:"passed"`
	Failure     string        `json:"failure,omitempty"`
	Phases      []PhaseReport `json:"phases"`
}

// PhaseReport is one phase's slice of the report.
type PhaseReport struct {
	Name        string                    `json:"name"`
	DurationMS  float64                   `json:"duration_ms"`
	Checkpoints []CheckpointReport        `json:"checkpoints,omitempty"`
	Counters    map[string]int64          `json:"counters,omitempty"`
	Latencies   map[string]LatencySummary `json:"latencies,omitempty"`
}

// CheckpointReport records one invariant's outcome.
type CheckpointReport struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail,omitempty"`
}

// LatencySummary is one distribution, microseconds for readability
// (the raw buckets live in the telemetry histograms; the report keeps
// the headline quantiles plus the phase-relative rate).
type LatencySummary struct {
	Count      int64   `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanUS     float64 `json:"mean_us"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`
}

// Write renders the report as SCENARIO_<scenario>.json under dir.
func (rep *Report) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("SCENARIO_%s.json", rep.Scenario))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
