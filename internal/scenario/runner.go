package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// RunConfig parameterizes Execute.
type RunConfig struct {
	// Seed pins the run seed; 0 defers to -scenario-seed, then
	// TDP_SCENARIO_SEED, then 1.
	Seed int64
	// ReportDir is where SCENARIO_<name>.json lands; "" defers to
	// TDP_SCENARIO_DIR, and if that is empty too no report is written
	// (the smoke tier under plain `go test ./...` stays artifact-free).
	ReportDir string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Execute runs the scenario: phases in order, each phase's checkpoints
// after its body, aborting on the first failure. Cleanups registered
// with Run.Defer run LIFO afterwards, pass or fail, and the report is
// written either way. The returned error (if any) names the failing
// phase or checkpoint and the seed that replays the run.
func Execute(s *Scenario, cfg RunConfig) (*Report, error) {
	seed := resolveSeed(cfg.Seed)
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Run{
		Scenario: s,
		Seed:     seed,
		RNG:      rand.New(rand.NewSource(seed)),
		Logf:     logf,
		state:    make(map[string]any),
	}
	rep := &Report{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        seed,
		Hosts:       s.Hosts,
		Start:       time.Now(),
	}
	logf("scenario %s: %d phases, seed %d", s.Name, len(s.Phases), seed)

	var failure error
	defer r.runCleanups()
	for _, ph := range s.Phases {
		pm := newPhaseMetrics()
		r.mu.Lock()
		r.phase = pm
		r.mu.Unlock()

		phaseStart := time.Now()
		pr := PhaseReport{Name: ph.Name}
		err := ph.Run(r)
		if err != nil {
			failure = fmt.Errorf("phase %q: %w", ph.Name, err)
		}
		for _, cp := range ph.Checkpoints {
			if failure != nil {
				// Don't assert invariants on a half-run phase; record
				// the checkpoint as skipped (Passed stays false, no
				// detail) only if it never ran — omit it entirely.
				break
			}
			cpr := CheckpointReport{Name: cp.Name, Passed: true}
			if cerr := cp.Check(r); cerr != nil {
				cpr.Passed = false
				cpr.Detail = cerr.Error()
				failure = fmt.Errorf("phase %q checkpoint %q: %w", ph.Name, cp.Name, cerr)
			}
			pr.Checkpoints = append(pr.Checkpoints, cpr)
			if failure != nil {
				break
			}
		}
		elapsed := time.Since(phaseStart)
		pr.DurationMS = float64(elapsed.Microseconds()) / 1000
		pr.Counters, pr.Latencies = pm.summarize(elapsed)
		rep.Phases = append(rep.Phases, pr)
		logf("  phase %-24s %8.1fms  checkpoints %d/%d", ph.Name, pr.DurationMS,
			passedCount(pr.Checkpoints), len(ph.Checkpoints))
		if failure != nil {
			break
		}
	}
	r.mu.Lock()
	r.phase = nil
	r.mu.Unlock()

	rep.DurationMS = float64(time.Since(rep.Start).Microseconds()) / 1000
	rep.Passed = failure == nil
	if failure != nil {
		failure = fmt.Errorf("scenario %s: %w (replay with -scenario-seed=%d)", s.Name, failure, seed)
		rep.Failure = failure.Error()
	}

	dir := cfg.ReportDir
	if dir == "" {
		dir = os.Getenv("TDP_SCENARIO_DIR")
	}
	if dir != "" {
		if path, werr := rep.Write(dir); werr != nil {
			logf("scenario %s: report write failed: %v", s.Name, werr)
		} else {
			logf("scenario %s: wrote %s", s.Name, path)
		}
	}
	return rep, failure
}

func passedCount(cps []CheckpointReport) int {
	n := 0
	for _, c := range cps {
		if c.Passed {
			n++
		}
	}
	return n
}

// TB is the subset of *testing.T the harness needs; declared here so
// the package does not import testing into non-test binaries.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunTB executes the scenario under a test, failing it (with the
// replay seed in the message) on any phase or checkpoint error.
func RunTB(tb TB, s *Scenario) *Report {
	tb.Helper()
	rep, err := Execute(s, RunConfig{Logf: tb.Logf})
	if err != nil {
		tb.Fatalf("%v", err)
	}
	return rep
}
