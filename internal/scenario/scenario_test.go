package scenario

import (
	"os"
	"testing"
	"time"
)

// TestScenariosSmoke is the tier-1 surface: every pre-built scenario
// shape at smoke scale, seconds each, under plain `go test ./...`.
func TestScenariosSmoke(t *testing.T) {
	for _, s := range Smoke() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			rep := RunTB(t, s)
			if !rep.Passed {
				t.Fatalf("report not marked passed: %+v", rep)
			}
		})
	}
}

// TestScenariosFull is the pool-scale tier behind `make scenario`
// (TDP_SCENARIO=full): 10k+ hosts, shard loss under sustained load,
// full churn and soak windows, each run writing SCENARIO_<name>.json
// when TDP_SCENARIO_DIR is set.
func TestScenariosFull(t *testing.T) {
	if os.Getenv("TDP_SCENARIO") != "full" {
		t.Skip("full scenario tier runs under `make scenario` (TDP_SCENARIO=full)")
	}
	for _, s := range Full() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			rep := RunTB(t, s)
			t.Logf("scenario %s: %d phases in %.1fms (seed %d)", rep.Scenario, len(rep.Phases), rep.DurationMS, rep.Seed)
		})
	}
}

// TestSeedResolution pins the replay contract: explicit > flag/env >
// default 1, and DeriveSeed is a pure function of (seed, label).
func TestSeedResolution(t *testing.T) {
	if got := resolveSeed(42); got != 42 {
		t.Errorf("explicit seed: got %d, want 42", got)
	}
	t.Setenv("TDP_SCENARIO_SEED", "7")
	if got := resolveSeed(0); got != 7 {
		t.Errorf("env seed: got %d, want 7", got)
	}
	t.Setenv("TDP_SCENARIO_SEED", "")
	if got := resolveSeed(0); got != 1 {
		t.Errorf("default seed: got %d, want 1", got)
	}
	r1 := &Run{Seed: 5}
	r2 := &Run{Seed: 5}
	if r1.DeriveSeed("chaos") != r2.DeriveSeed("chaos") {
		t.Error("DeriveSeed not deterministic")
	}
	if r1.DeriveSeed("chaos") == r1.DeriveSeed("churn") {
		t.Error("DeriveSeed does not separate labels")
	}
}

// TestExecuteFailureShape: a failing checkpoint aborts the run, the
// report records the failure with the replay seed, later phases don't
// run, and cleanups still do.
func TestExecuteFailureShape(t *testing.T) {
	cleaned := false
	ran2 := false
	s := &Scenario{
		Name: "failing",
		Phases: []Phase{
			{
				Name: "p1",
				Run: func(r *Run) error {
					r.Defer(func() { cleaned = true })
					r.Observe("op", 3*time.Millisecond)
					r.Count("ops", 2)
					return nil
				},
				Checkpoints: []Checkpoint{
					{Name: "always-fails", Check: func(r *Run) error {
						return os.ErrNotExist
					}},
				},
			},
			{Name: "p2", Run: func(r *Run) error { ran2 = true; return nil }},
		},
	}
	rep, err := Execute(s, RunConfig{Seed: 99})
	if err == nil {
		t.Fatal("Execute returned nil error for a failing checkpoint")
	}
	if ran2 {
		t.Error("phase after the failure still ran")
	}
	if !cleaned {
		t.Error("cleanups did not run on failure")
	}
	if rep.Passed {
		t.Error("report marked passed")
	}
	if rep.Seed != 99 {
		t.Errorf("report seed = %d, want 99", rep.Seed)
	}
	if len(rep.Phases) != 1 || len(rep.Phases[0].Checkpoints) != 1 || rep.Phases[0].Checkpoints[0].Passed {
		t.Errorf("phase report shape wrong: %+v", rep.Phases)
	}
	if got := rep.Phases[0].Counters["ops"]; got != 2 {
		t.Errorf("phase counters lost: ops = %d, want 2", got)
	}
	if lat, ok := rep.Phases[0].Latencies["op"]; !ok || lat.Count != 1 {
		t.Errorf("phase latencies lost: %+v", rep.Phases[0].Latencies)
	}
	for _, frag := range []string{"p1", "always-fails", "-scenario-seed=99"} {
		if !contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestReportWrite: Execute writes SCENARIO_<name>.json into the
// configured directory with the seed and per-phase metrics inside.
func TestReportWrite(t *testing.T) {
	dir := t.TempDir()
	s := &Scenario{
		Name: "report-shape",
		Phases: []Phase{{
			Name: "only",
			Run: func(r *Run) error {
				r.Observe("lat", time.Millisecond)
				r.Count("n", 1)
				return nil
			},
		}},
	}
	if _, err := Execute(s, RunConfig{Seed: 3, ReportDir: dir}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	data, err := os.ReadFile(dir + "/SCENARIO_report-shape.json")
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	for _, frag := range []string{`"seed": 3`, `"passed": true`, `"lat"`, `"p99_us"`} {
		if !contains(string(data), frag) {
			t.Errorf("report missing %q:\n%s", frag, data)
		}
	}
}
