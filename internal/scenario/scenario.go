// Package scenario is the pool-scale simulation harness: declarative
// scenarios that compose the layers the repo already has — the condor
// pool, procsim/mpisim workloads, paradyn tool attach, mrnet reduction
// trees, sharded CASS routing, netsim chaos injection, and telemetry —
// into repeatable large-scale runs.
//
// A Scenario is a named sequence of phases (ramp hosts, submit jobs,
// attach tools, kill daemons or shards, drain, recover). Each phase
// has a body that drives the system and a set of checkpoints:
// invariants asserted when the phase completes (zero survivor
// failures, monotone lost counters, front-end message-rate bounds).
// While a phase runs, a metrics collector records latency and
// throughput distributions; Execute writes them per phase to a
// SCENARIO_<name>.json report in the same spirit as
// BENCH_attrspace.json, so scaling claims are measured artifacts
// rather than anecdotes.
//
// Every run is seeded. The seed feeds both the netsim chaos dialers
// and any randomized phase scheduling (which daemon to kill, which
// shard to lose), is printed in the report and in failure messages,
// and can be pinned with -scenario-seed (or TDP_SCENARIO_SEED) to
// replay a failing schedule exactly.
//
// The shape — Scenario → phases → checkpoints → metrics → JSON
// reporter — follows the codeNERD context harness (SNIPPETS.md §1–3)
// and GridSim's approach of modeling scale as a simulation toolkit.
package scenario

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"time"
)

// Scenario is one declarative pool-scale run.
type Scenario struct {
	// Name keys the report file: SCENARIO_<Name>.json.
	Name string
	// Description is one line for the report and -v logs.
	Description string
	// Hosts is the headline pool size, recorded in the report.
	Hosts int
	// Phases run in order; the first failing phase or checkpoint
	// aborts the scenario (cleanups still run, the report is still
	// written).
	Phases []Phase
}

// Phase is one stage of a scenario: a body that drives the system
// and the invariants that must hold once it completes.
type Phase struct {
	Name string
	// Run drives the phase. It may spawn goroutines but must join
	// them before returning; checkpoints run after it.
	Run func(r *Run) error
	// Checkpoints are asserted in order after Run returns.
	Checkpoints []Checkpoint
}

// Checkpoint is one mid-run invariant.
type Checkpoint struct {
	Name  string
	Check func(r *Run) error
}

// scenarioSeed is the -scenario-seed flag: it overrides the default
// seed (but not an explicit RunConfig.Seed) so a failing run can be
// replayed with the exact fault and scheduling sequence the failure
// printed. Registered here, in the package, so every test binary that
// links the harness accepts it.
var scenarioSeed = flag.Int64("scenario-seed", 0, "seed for scenario chaos + scheduling (0 = TDP_SCENARIO_SEED or 1)")

// resolveSeed picks the run seed: an explicit config seed wins, then
// -scenario-seed, then TDP_SCENARIO_SEED, then the pinned default 1
// (pinned, like TDP_CHAOS_SEED, so CI runs are reproducible).
func resolveSeed(explicit int64) int64 {
	if explicit != 0 {
		return explicit
	}
	if flag.Parsed() && *scenarioSeed != 0 {
		return *scenarioSeed
	}
	if v := os.Getenv("TDP_SCENARIO_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n != 0 {
			return n
		}
	}
	return 1
}

// Run is the live state of an executing scenario, passed to every
// phase body and checkpoint.
type Run struct {
	Scenario *Scenario
	// Seed is the resolved run seed. Phase bodies derive all their
	// randomness from it (via RNG or DeriveSeed) so a run replays
	// bit-for-bit under -scenario-seed.
	Seed int64
	// RNG is seeded from Seed. Phases run sequentially; use it only
	// from the phase body's own goroutine (derive per-worker seeds
	// with DeriveSeed for concurrent randomness).
	RNG *rand.Rand
	// Logf reports progress (testing.T.Logf under go test).
	Logf func(format string, args ...any)

	mu      sync.Mutex
	state   map[string]any
	cleanup []func()
	phase   *phaseMetrics // metrics sink for the currently running phase
}

// Put stashes cross-phase state (the netsim network, the tree, the
// fleet, ...) under a key.
func (r *Run) Put(key string, v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state[key] = v
}

// Get returns state stashed by an earlier phase, or nil.
func (r *Run) Get(key string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state[key]
}

// Defer registers a cleanup; cleanups run LIFO when the scenario
// finishes, pass or fail.
func (r *Run) Defer(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cleanup = append(r.cleanup, fn)
}

// DeriveSeed returns a sub-seed deterministically derived from the run
// seed and a label — one per chaos dialer or concurrent worker, so
// independent consumers of randomness don't perturb each other's
// sequences when a scenario is edited.
func (r *Run) DeriveSeed(label string) int64 {
	// FNV-1a over the label, folded into the seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	s := int64(h ^ uint64(r.Seed)*0x9e3779b97f4a7c15)
	if s == 0 {
		s = 1
	}
	return s
}

// Observe records one latency observation into the current phase's
// named distribution. Safe for concurrent use by phase workers.
func (r *Run) Observe(name string, d time.Duration) {
	r.mu.Lock()
	pm := r.phase
	r.mu.Unlock()
	if pm != nil {
		pm.observe(name, d)
	}
}

// Count adds to the current phase's named throughput counter. Safe for
// concurrent use by phase workers.
func (r *Run) Count(name string, delta int64) {
	r.mu.Lock()
	pm := r.phase
	r.mu.Unlock()
	if pm != nil {
		pm.count(name, delta)
	}
}

// WaitFor polls cond until it holds or the timeout passes; the
// returned error names what was being waited for. It is the harness's
// standard convergence primitive (flush-driven rollups, reconnecting
// sessions).
func (r *Run) WaitFor(timeout time.Duration, cond func() bool, what string) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v waiting for %s", timeout, what)
}

func (r *Run) runCleanups() {
	r.mu.Lock()
	fns := r.cleanup
	r.cleanup = nil
	r.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}
