package scenario

import (
	"sync"
	"time"

	"tdp/internal/telemetry"
)

// Buckets for scenario-scale latencies: wider than the wire-level
// DefBuckets because a scenario op can span negotiation, tool attach,
// or a full reconnect — 5µs up to 30s, in seconds.
var scenarioBuckets = []float64{
	5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30,
}

// phaseMetrics collects one phase's distributions: named latency
// histograms (telemetry.Histogram, so the merge/quantile machinery is
// shared with the live system) and named counters. One instance per
// phase execution; the runner snapshots it into the report when the
// phase ends.
type phaseMetrics struct {
	mu       sync.Mutex
	start    time.Time
	counters map[string]int64
	hists    map[string]*telemetry.Histogram
}

func newPhaseMetrics() *phaseMetrics {
	return &phaseMetrics{
		start:    time.Now(),
		counters: make(map[string]int64),
		hists:    make(map[string]*telemetry.Histogram),
	}
}

func (pm *phaseMetrics) observe(name string, d time.Duration) {
	pm.mu.Lock()
	h := pm.hists[name]
	if h == nil {
		h = telemetry.NewHistogram(scenarioBuckets)
		pm.hists[name] = h
	}
	pm.mu.Unlock()
	// Histogram observation is lock-free; only map access is guarded.
	h.ObserveDuration(d)
}

func (pm *phaseMetrics) count(name string, delta int64) {
	pm.mu.Lock()
	pm.counters[name] += delta
	pm.mu.Unlock()
}

// summarize renders the collected metrics for the report. elapsed is
// the phase wall time, used for rates.
func (pm *phaseMetrics) summarize(elapsed time.Duration) (map[string]int64, map[string]LatencySummary) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var counters map[string]int64
	if len(pm.counters) > 0 {
		counters = make(map[string]int64, len(pm.counters))
		for k, v := range pm.counters {
			counters[k] = v
		}
	}
	var lats map[string]LatencySummary
	if len(pm.hists) > 0 {
		lats = make(map[string]LatencySummary, len(pm.hists))
		for k, h := range pm.hists {
			s := h.Snapshot()
			sum := LatencySummary{
				Count:  s.Count,
				MeanUS: s.Mean() * 1e6,
				P50US:  s.Quantile(0.50) * 1e6,
				P90US:  s.Quantile(0.90) * 1e6,
				P99US:  s.Quantile(0.99) * 1e6,
			}
			if elapsed > 0 {
				sum.RatePerSec = float64(s.Count) / elapsed.Seconds()
			}
			lats[k] = sum
		}
	}
	return counters, lats
}
