package scenario

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/condor"
	"tdp/internal/mpisim"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/telemetry"
)

// This file holds the pre-built scenarios. Each comes in two sizes:
// Smoke() returns variants scaled to run in seconds under plain
// `go test ./...`; Full() returns the pool-scale tier behind
// `make scenario` (10k+ hosts, longer soak windows), which also writes
// the SCENARIO_*.json reports when TDP_SCENARIO_DIR is set.

// Smoke returns the scaled-down tier: every scenario shape, small
// enough for the tier-1 suite.
func Smoke() []*Scenario {
	return []*Scenario{
		SteadyState("steady-state-smoke", 64, 8, 2, 3),
		ShardLossUnderLoad("shard-loss-smoke", 200*time.Millisecond, 600*time.Millisecond),
		ToolChurn("tool-churn-smoke", 96, 16, 2, 2, 8),
		RollingRestart("rolling-restart-smoke", 3, 6),
		MixedWorkloadSoak("mixed-workload-smoke", 3, 3, 40),
	}
}

// Full returns the pool-scale tier for `make scenario`: ≥10k hosts in
// the steady-state run, shard loss under sustained load, deeper churn
// and soak windows.
func Full() []*Scenario {
	return []*Scenario{
		SteadyState("steady-state-10k", 10240, 32, 3, 3),
		ShardLossUnderLoad("shard-loss-under-load", 500*time.Millisecond, 1500*time.Millisecond),
		ToolChurn("tool-churn", 512, 32, 2, 4, 48),
		RollingRestart("rolling-restart", 3, 12),
		MixedWorkloadSoak("mixed-workload-soak", 4, 10, 60),
	}
}

// planeKey et al name cross-phase state slots.
const (
	planeKey   = "plane"
	cassKey    = "cass"
	clientsKey = "clients"
	victimKey  = "victim"
	poolKey    = "pool"
	feKey      = "fe"
)

func plane(r *Run) *Plane                { return r.Get(planeKey).(*Plane) }
func cass(r *Run) *ShardedCASS           { return r.Get(cassKey).(*ShardedCASS) }
func clients(r *Run) []*attrspace.Client { return r.Get(clientsKey).([]*attrspace.Client) }

// SteadyState is the headline scale scenario: `hosts` simulated
// daemons over a `levels`-deep reduction tree publish cumulative
// counter streams and one histogram each; the front-end's message
// count must stay below one per daemon, the rollup must converge to
// exact totals, and the drain must produce a single aggregate DONE.
func SteadyState(name string, hosts, fanOut, levels, rounds int) *Scenario {
	const step = 25
	return &Scenario{
		Name:        name,
		Description: fmt.Sprintf("%d simulated hosts over a %d-level mrnet tree: ramp, steady telemetry load, drain", hosts, levels),
		Hosts:       hosts,
		Phases: []Phase{
			{
				Name: "build-tree",
				Run: func(r *Run) error {
					p, err := BuildPlane(r, PlaneConfig{Hosts: hosts, FanOut: fanOut, Levels: levels})
					if err != nil {
						return err
					}
					r.Put(planeKey, p)
					r.Count("tree_nodes", int64(len(p.Tree.Nodes())))
					return nil
				},
				Checkpoints: []Checkpoint{
					{Name: "leaf-row-sized", Check: func(r *Run) error {
						want := (hosts + fanOut - 1) / fanOut
						if got := len(plane(r).Tree.LeafAddrs()); got != want {
							return fmt.Errorf("leaves = %d, want %d", got, want)
						}
						return nil
					}},
				},
			},
			{
				Name: "ramp-hosts",
				Run: func(r *Run) error {
					p := plane(r)
					return p.Fleet.ForAll(0, func(i int) error {
						start := time.Now()
						if err := p.Fleet.Register(i); err != nil {
							return err
						}
						r.Observe("register", time.Since(start))
						r.Count("registered", 1)
						return nil
					})
				},
				Checkpoints: []Checkpoint{
					{Name: "single-frontend-connection", Check: func(r *Run) error {
						p := plane(r)
						return r.WaitFor(20*time.Second, func() bool { return p.Sink.Conns() == 1 },
							"the root's single upstream connection")
					}},
					{Name: "tree-sees-all-hosts", Check: func(r *Run) error {
						p := plane(r)
						return r.WaitFor(30*time.Second, func() bool {
							return p.RootSnapshot().Counters["mrnet.tree.daemons"] == int64(hosts)
						}, fmt.Sprintf("mrnet.tree.daemons == %d", hosts))
					}},
				},
			},
			{
				Name: "steady-load",
				Run: func(r *Run) error {
					p := plane(r)
					for k := 1; k <= rounds; k++ {
						v := int64(k * step)
						if err := p.Fleet.ForAll(0, func(i int) error {
							start := time.Now()
							if err := p.Fleet.PublishCounter(i, "app.ops", v); err != nil {
								return err
							}
							r.Observe("publish", time.Since(start))
							r.Count("samples_published", 1)
							return nil
						}); err != nil {
							return fmt.Errorf("round %d: %w", k, err)
						}
					}
					h := telemetry.NewHistogram([]float64{1, 10, 100})
					return p.Fleet.ForAll(0, func(i int) error {
						h2 := telemetry.NewHistogram(h.Bounds())
						h2.Observe(float64(i % 20))
						return p.Fleet.PublishHist(i, "app.lat", h2.Snapshot())
					})
				},
				Checkpoints: []Checkpoint{
					{Name: "exact-rollup-convergence", Check: func(r *Run) error {
						p := plane(r)
						want := int64(hosts * rounds * step)
						var last telemetry.Snapshot
						err := r.WaitFor(60*time.Second, func() bool {
							last = p.RootSnapshot()
							return last.Counters["app.ops"] == want &&
								last.Histograms["app.lat"].Count == int64(hosts)
						}, "root rollup convergence")
						if err != nil {
							return fmt.Errorf("%v (app.ops=%d want %d, app.lat count=%d want %d)",
								err, last.Counters["app.ops"], want, last.Histograms["app.lat"].Count, hosts)
						}
						return nil
					}},
					{Name: "tree-depth", Check: func(r *Run) error {
						if got := plane(r).RootSnapshot().Gauges["mrnet.tree.depth"]; got != int64(levels) {
							return fmt.Errorf("mrnet.tree.depth = %d, want %d", got, levels)
						}
						return nil
					}},
					{Name: "fe-rate-independent-of-pool", Check: func(r *Run) error {
						p := plane(r)
						if got := p.Sink.Msgs(); got >= int64(hosts) {
							return fmt.Errorf("front-end received %d messages for %d daemons; aggregation should keep this below one per daemon", got, hosts)
						}
						r.Count("fe_messages", p.Sink.Msgs())
						return nil
					}},
					{Name: "zero-stream-loss", Check: func(r *Run) error {
						if lost := plane(r).RootSnapshot().Counters["mrnet.stream.lost"]; lost != 0 {
							return fmt.Errorf("mrnet.stream.lost = %d, want 0", lost)
						}
						return nil
					}},
				},
			},
			{
				Name: "drain",
				Run: func(r *Run) error {
					p := plane(r)
					return p.Fleet.ForAll(0, func(i int) error {
						start := time.Now()
						if err := p.Fleet.Done(i, 0); err != nil {
							return err
						}
						r.Observe("done", time.Since(start))
						return nil
					})
				},
				Checkpoints: []Checkpoint{
					{Name: "aggregate-done-at-frontend", Check: func(r *Run) error {
						p := plane(r)
						return r.WaitFor(30*time.Second, func() bool {
							return p.Sink.VerbCount("DONE") >= 1
						}, "the aggregated DONE at the front-end")
					}},
					{Name: "no-hosts-lost", Check: func(r *Run) error {
						if down := plane(r).RootSnapshot().Counters["mrnet.hosts.down"]; down != 0 {
							return fmt.Errorf("mrnet.hosts.down = %d, want 0 (clean drain)", down)
						}
						return nil
					}},
				},
			},
		},
	}
}

// ShardLossUnderLoad kills one CASS shard of a routed pool under
// continuous load: surviving shards must keep serving with zero
// failures, the dead shard's range must fail fast with the typed
// ErrShardDown (never hang), and a restart must return the pool to
// fully writable.
func ShardLossUnderLoad(name string, baseline, afterKill time.Duration) *Scenario {
	const n = 3
	type score struct {
		mu        sync.Mutex
		ok        int64
		fails     int64
		downErrs  int64
		postKill  int64
		slowestMs int64
	}
	scores := make([]*score, n)

	// loadFor runs the per-shard workers for d, optionally killing the
	// victim kill-way through.
	loadFor := func(r *Run, d time.Duration, kill func()) error {
		var killed sync.Once
		var killedAt time.Time
		var mu sync.Mutex
		start := time.Now()
		return ForEach(n, n, func(i int) error {
			c := clients(r)[i]
			sc := scores[i]
			for round := 0; time.Since(start) < d; round++ {
				if kill != nil && time.Since(start) > d/3 {
					killed.Do(func() {
						kill()
						mu.Lock()
						killedAt = time.Now()
						mu.Unlock()
					})
				}
				opCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				opStart := time.Now()
				err := c.PutGlobal(opCtx, "k", fmt.Sprintf("v%d", round))
				if err == nil {
					_, err = c.TryGetGlobal(opCtx, "k")
				}
				cancel()
				ms := time.Since(opStart).Milliseconds()
				r.Observe(fmt.Sprintf("shard%d.op", i), time.Since(opStart))
				mu.Lock()
				wasKilled := !killedAt.IsZero() && opStart.After(killedAt)
				mu.Unlock()
				sc.mu.Lock()
				if ms > sc.slowestMs {
					sc.slowestMs = ms
				}
				if err == nil {
					sc.ok++
					if wasKilled {
						sc.postKill++
					}
				} else {
					sc.fails++
					if errors.Is(err, attrspace.ErrShardDown) {
						sc.downErrs++
					}
				}
				sc.mu.Unlock()
				time.Sleep(2 * time.Millisecond)
			}
			return nil
		})
	}

	return &Scenario{
		Name:        name,
		Description: "3-shard CASS pool: kill one shard under load, survivors keep serving, victim fails fast, restart recovers",
		Hosts:       n,
		Phases: []Phase{
			{
				Name: "spin-up",
				Run: func(r *Run) error {
					for i := range scores {
						scores[i] = &score{}
					}
					sc, err := BuildShardedCASS(r, n, 50*time.Millisecond)
					if err != nil {
						return err
					}
					r.Put(cassKey, sc)
					cs := make([]*attrspace.Client, n)
					for i := 0; i < n; i++ {
						c, err := attrspace.Dial(nil, sc.LASSAddr, sc.Contexts[i])
						if err != nil {
							return fmt.Errorf("dial worker %d: %w", i, err)
						}
						cs[i] = c
					}
					r.Put(clientsKey, cs)
					r.Defer(func() {
						for _, c := range cs {
							c.Close()
						}
					})
					return nil
				},
			},
			{
				Name: "baseline-load",
				Run:  func(r *Run) error { return loadFor(r, baseline, nil) },
				Checkpoints: []Checkpoint{
					{Name: "zero-baseline-failures", Check: func(r *Run) error {
						for i, sc := range scores {
							sc.mu.Lock()
							ok, fails := sc.ok, sc.fails
							sc.mu.Unlock()
							if fails != 0 || ok == 0 {
								return fmt.Errorf("shard %d baseline: ok=%d fails=%d", i, ok, fails)
							}
							r.Count(fmt.Sprintf("shard%d.ok", i), ok)
						}
						return nil
					}},
				},
			},
			{
				Name: "shard-loss",
				Run: func(r *Run) error {
					// The victim is seed-chosen: -scenario-seed replays
					// the same loss schedule.
					victim := r.RNG.Intn(n)
					r.Put(victimKey, victim)
					r.Logf("  killing shard %d under load", victim)
					for i := range scores {
						scores[i] = &score{}
					}
					return loadFor(r, afterKill, func() { cass(r).Shards[victim].Kill() })
				},
				Checkpoints: []Checkpoint{
					{Name: "survivors-zero-failures", Check: func(r *Run) error {
						victim := r.Get(victimKey).(int)
						for i, sc := range scores {
							if i == victim {
								continue
							}
							sc.mu.Lock()
							fails, post := sc.fails, sc.postKill
							sc.mu.Unlock()
							if fails != 0 {
								return fmt.Errorf("surviving shard %d: %d ops failed — one shard's death leaked", i, fails)
							}
							if post == 0 {
								return fmt.Errorf("surviving shard %d: no successes after the kill", i)
							}
						}
						return nil
					}},
					{Name: "victim-fails-typed", Check: func(r *Run) error {
						victim := r.Get(victimKey).(int)
						sc := scores[victim]
						sc.mu.Lock()
						defer sc.mu.Unlock()
						if sc.downErrs == 0 {
							return fmt.Errorf("victim shard %d: no ErrShardDown surfaced after the kill (fails=%d)", victim, sc.fails)
						}
						r.Count("victim.down_errs", sc.downErrs)
						return nil
					}},
					{Name: "degraded-mode-never-hangs", Check: func(r *Run) error {
						for i, sc := range scores {
							sc.mu.Lock()
							slowest := sc.slowestMs
							sc.mu.Unlock()
							if slowest > 3500 {
								return fmt.Errorf("shard %d: an op took %dms — degraded mode must not hang", i, slowest)
							}
						}
						return nil
					}},
				},
			},
			{
				Name: "recover",
				Run: func(r *Run) error {
					victim := r.Get(victimKey).(int)
					if err := cass(r).Shards[victim].Restart(); err != nil {
						return err
					}
					c := clients(r)[victim]
					return r.WaitFor(15*time.Second, func() bool {
						ctx, cancel := context.WithTimeout(context.Background(), time.Second)
						defer cancel()
						return c.PutGlobal(ctx, "recovered", "1") == nil
					}, "the restarted shard to serve writes again")
				},
				Checkpoints: []Checkpoint{
					{Name: "all-ranges-writable", Check: func(r *Run) error {
						for i, c := range clients(r) {
							ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
							err := c.PutGlobal(ctx, "final", fmt.Sprintf("s%d", i))
							cancel()
							if err != nil {
								return fmt.Errorf("shard %d still unwritable: %w", i, err)
							}
						}
						return nil
					}},
					{Name: "scatter-gather-intact", Check: func(r *Run) error {
						sc := cass(r)
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						defer cancel()
						snaps, err := clients(r)[0].SnapshotGlobalMany(ctx, sc.Contexts)
						if err != nil {
							return fmt.Errorf("SnapshotGlobalMany: %w", err)
						}
						for i, name := range sc.Contexts {
							if snaps[name]["final"] != fmt.Sprintf("s%d", i) {
								return fmt.Errorf("context %s: final = %q, want s%d", name, snaps[name]["final"], i)
							}
						}
						ctxs, err := clients(r)[0].GlobalContexts(ctx)
						if err != nil {
							return fmt.Errorf("GlobalContexts: %w", err)
						}
						if len(ctxs) < len(sc.Contexts) {
							return fmt.Errorf("GlobalContexts = %d contexts, want >= %d", len(ctxs), len(sc.Contexts))
						}
						return nil
					}},
				},
			},
		},
	}
}

// ToolChurn repeatedly kills and resumes batches of daemons while the
// pool publishes cumulative counters: hosts.down must count every
// loss, cumulative totals must stay monotone through retire/revive,
// and after the last revival the rollup must converge to the exact
// total as if nothing ever died.
func ToolChurn(name string, hosts, fanOut, levels, churnRounds, killsPerRound int) *Scenario {
	const step = 10
	return &Scenario{
		Name:        name,
		Description: fmt.Sprintf("%d hosts: %d rounds of kill/resume churn (%d per round) under cumulative load", hosts, churnRounds, killsPerRound),
		Hosts:       hosts,
		Phases: []Phase{
			{
				Name: "ramp",
				Run: func(r *Run) error {
					p, err := BuildPlane(r, PlaneConfig{Hosts: hosts, FanOut: fanOut, Levels: levels})
					if err != nil {
						return err
					}
					r.Put(planeKey, p)
					return p.Fleet.ForAll(0, func(i int) error {
						if err := p.Fleet.Register(i); err != nil {
							return err
						}
						return p.Fleet.PublishCounter(i, "app.ops", step)
					})
				},
				Checkpoints: []Checkpoint{
					{Name: "baseline-rollup", Check: func(r *Run) error {
						p := plane(r)
						return r.WaitFor(30*time.Second, func() bool {
							s := p.RootSnapshot()
							return s.Counters["app.ops"] == int64(hosts*step) &&
								s.Counters["mrnet.tree.daemons"] == int64(hosts)
						}, "baseline rollup")
					}},
				},
			},
			{
				Name: "churn",
				Run: func(r *Run) error {
					p := plane(r)
					lastOps := int64(hosts * step)
					killedTotal := 0
					for round := 1; round <= churnRounds; round++ {
						// Seed-chosen victims: the same -scenario-seed
						// kills the same daemons in the same order.
						kills := r.RNG.Perm(hosts)[:killsPerRound]
						for _, i := range kills {
							p.Fleet.Kill(i)
						}
						killedTotal += len(kills)
						r.Count("kills", int64(len(kills)))
						if err := r.WaitFor(30*time.Second, func() bool {
							return p.RootSnapshot().Counters["mrnet.hosts.down"] == int64(killedTotal)
						}, fmt.Sprintf("round %d: hosts.down == %d", round, killedTotal)); err != nil {
							return err
						}
						// Cumulative streams must never run backwards,
						// deaths and retires included.
						if ops := p.RootSnapshot().Counters["app.ops"]; ops < lastOps {
							return fmt.Errorf("round %d: app.ops ran backwards after kills: %d -> %d", round, lastOps, ops)
						}
						// Revive the victims and advance everyone one
						// cumulative step.
						v := int64((round + 1) * step)
						if err := ForEach(len(kills), 0, func(k int) error {
							start := time.Now()
							if err := p.Fleet.Resume(kills[k]); err != nil {
								return err
							}
							r.Observe("resume", time.Since(start))
							return nil
						}); err != nil {
							return fmt.Errorf("round %d resume: %w", round, err)
						}
						r.Count("resumes", int64(len(kills)))
						if err := p.Fleet.ForAll(0, func(i int) error {
							return p.Fleet.PublishCounter(i, "app.ops", v)
						}); err != nil {
							return fmt.Errorf("round %d publish: %w", round, err)
						}
						want := int64(hosts) * v
						if err := r.WaitFor(30*time.Second, func() bool {
							ops := p.RootSnapshot().Counters["app.ops"]
							if ops < lastOps {
								return false
							}
							lastOps = ops
							return ops == want
						}, fmt.Sprintf("round %d: app.ops == %d", round, want)); err != nil {
							return err
						}
					}
					return nil
				},
				Checkpoints: []Checkpoint{
					{Name: "every-loss-counted", Check: func(r *Run) error {
						want := int64(churnRounds * killsPerRound)
						if got := plane(r).RootSnapshot().Counters["mrnet.hosts.down"]; got != want {
							return fmt.Errorf("mrnet.hosts.down = %d, want %d", got, want)
						}
						return nil
					}},
					{Name: "exact-total-after-churn", Check: func(r *Run) error {
						want := int64(hosts * (churnRounds + 1) * step)
						if got := plane(r).RootSnapshot().Counters["app.ops"]; got != want {
							return fmt.Errorf("app.ops = %d, want %d (churn must not double-count or drop)", got, want)
						}
						return nil
					}},
					{Name: "frontend-connection-stable", Check: func(r *Run) error {
						if got := plane(r).Sink.Conns(); got != 1 {
							return fmt.Errorf("front-end connections = %d, want 1", got)
						}
						return nil
					}},
				},
			},
			{
				Name: "drain",
				Run: func(r *Run) error {
					p := plane(r)
					return p.Fleet.ForAll(0, func(i int) error { return p.Fleet.Done(i, 0) })
				},
				Checkpoints: []Checkpoint{
					{Name: "aggregate-done-at-frontend", Check: func(r *Run) error {
						p := plane(r)
						return r.WaitFor(30*time.Second, func() bool {
							return p.Sink.VerbCount("DONE") >= 1
						}, "the aggregated DONE at the front-end")
					}},
				},
			},
		},
	}
}

// RollingRestart drains and restarts every CASS shard in sequence
// while writers hammer all ranges with retry loops: every op must
// eventually land (a drain window shows up as retries, never as a
// permanent failure), no attempt may hang, and after the last restart
// every range must take a confirmed write that reads back and shows up
// in scatter-gather. Note what is deliberately NOT asserted: data
// written before a shard's restart surviving it — today a restart
// destroys the shard's contexts when their last reference leaves
// (durability/replication is ROADMAP item 1), so the scenario pins
// the availability contract, not a durability one.
func RollingRestart(name string, shards, opsPerShard int) *Scenario {
	type wstate struct {
		mu        sync.Mutex
		landed    int64 // ops confirmed written
		permanent int64 // ops that never succeeded
		slowestMs int64
	}
	states := make([]*wstate, shards)
	return &Scenario{
		Name:        name,
		Description: fmt.Sprintf("drain+restart each of %d CASS shards in sequence under retrying writers", shards),
		Hosts:       shards,
		Phases: []Phase{
			{
				Name: "spin-up",
				Run: func(r *Run) error {
					for i := range states {
						states[i] = &wstate{}
					}
					sc, err := BuildShardedCASS(r, shards, 50*time.Millisecond)
					if err != nil {
						return err
					}
					r.Put(cassKey, sc)
					cs := make([]*attrspace.Client, shards)
					for i := 0; i < shards; i++ {
						c, err := attrspace.Dial(nil, sc.LASSAddr, sc.Contexts[i])
						if err != nil {
							return fmt.Errorf("dial worker %d: %w", i, err)
						}
						cs[i] = c
						ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
						err = c.PutGlobal(ctx, "boot", sc.Contexts[i])
						cancel()
						if err != nil {
							return fmt.Errorf("seed write shard %d: %w", i, err)
						}
					}
					r.Put(clientsKey, cs)
					r.Defer(func() {
						for _, c := range cs {
							c.Close()
						}
					})
					return nil
				},
			},
			{
				Name: "rolling-restart",
				Run: func(r *Run) error {
					sc := cass(r)
					cs := clients(r)
					stop := make(chan struct{})
					var wg sync.WaitGroup
					// Writers: each shard's worker writes op-indexed
					// values continuously until the restarts finish,
					// retrying each op until it lands — a drain window
					// shows up as retries, never as a lost write.
					for i := 0; i < shards; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							st := states[i]
							for op := 1; ; op++ {
								select {
								case <-stop:
									return
								default:
								}
								opStart := time.Now()
								deadline := time.Now().Add(15 * time.Second)
								landed := false
								for time.Now().Before(deadline) {
									attemptStart := time.Now()
									ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
									err := cs[i].PutGlobal(ctx, "k", fmt.Sprintf("v%d", op))
									cancel()
									ms := time.Since(attemptStart).Milliseconds()
									st.mu.Lock()
									if ms > st.slowestMs {
										st.slowestMs = ms
									}
									st.mu.Unlock()
									if err == nil {
										landed = true
										break
									}
									r.Count(fmt.Sprintf("shard%d.retries", i), 1)
									select {
									case <-stop:
										// Don't charge an op abandoned at
										// shutdown as a permanent failure.
										return
									case <-time.After(10 * time.Millisecond):
									}
								}
								r.Observe(fmt.Sprintf("shard%d.write", i), time.Since(opStart))
								st.mu.Lock()
								if landed {
									st.landed++
								} else {
									st.permanent++
								}
								st.mu.Unlock()
								time.Sleep(5 * time.Millisecond)
							}
						}(i)
					}
					// The rolling restart itself, in seed-chosen order:
					// graceful drain, rebind on the same address and
					// space, wait writable, move on.
					order := r.RNG.Perm(shards)
					for _, i := range order {
						time.Sleep(100 * time.Millisecond)
						r.Logf("  draining shard %d", i)
						sc.Shards[i].Drain(2 * time.Second)
						if err := sc.Shards[i].Restart(); err != nil {
							close(stop)
							wg.Wait()
							return err
						}
						probe := clients(r)[i]
						if err := r.WaitFor(15*time.Second, func() bool {
							ctx, cancel := context.WithTimeout(context.Background(), time.Second)
							defer cancel()
							return probe.PutGlobal(ctx, "probe", fmt.Sprintf("up%d", i)) == nil
						}, fmt.Sprintf("shard %d writable after restart", i)); err != nil {
							close(stop)
							wg.Wait()
							return err
						}
						r.Count("restarts", 1)
					}
					// Let the writers land at least opsPerShard ops each
					// with every shard back up, so the workload provably
					// spans the whole restart window.
					if err := r.WaitFor(30*time.Second, func() bool {
						for _, st := range states {
							st.mu.Lock()
							n := st.landed
							st.mu.Unlock()
							if n < int64(opsPerShard) {
								return false
							}
						}
						return true
					}, fmt.Sprintf("every writer to land >= %d ops", opsPerShard)); err != nil {
						close(stop)
						wg.Wait()
						return err
					}
					close(stop)
					wg.Wait()
					// Post-restart confirmed writes: these must be
					// durable for the rest of the run and visible to
					// scatter-gather.
					return ForEach(shards, shards, func(i int) error {
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						defer cancel()
						return cs[i].PutGlobal(ctx, "final", fmt.Sprintf("s%d", i))
					})
				},
				Checkpoints: []Checkpoint{
					{Name: "zero-permanent-write-failures", Check: func(r *Run) error {
						for i, st := range states {
							st.mu.Lock()
							perm, landed := st.permanent, st.landed
							st.mu.Unlock()
							if perm != 0 {
								return fmt.Errorf("shard %d: %d writes never landed", i, perm)
							}
							if landed < int64(opsPerShard) {
								return fmt.Errorf("shard %d: only %d ops landed, want >= %d", i, landed, opsPerShard)
							}
							r.Count(fmt.Sprintf("shard%d.landed", i), landed)
						}
						return nil
					}},
					{Name: "no-attempt-hung", Check: func(r *Run) error {
						for i, st := range states {
							st.mu.Lock()
							slowest := st.slowestMs
							st.mu.Unlock()
							if slowest > 3500 {
								return fmt.Errorf("shard %d: a write attempt took %dms — restarts must fail fast, not hang", i, slowest)
							}
						}
						return nil
					}},
					{Name: "post-restart-writes-read-back", Check: func(r *Run) error {
						for i, c := range clients(r) {
							ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
							got, err := c.TryGetGlobal(ctx, "final")
							cancel()
							if err != nil {
								return fmt.Errorf("shard %d read-back: %w", i, err)
							}
							if want := fmt.Sprintf("s%d", i); got != want {
								return fmt.Errorf("shard %d: final = %q after restarts, want %q", i, got, want)
							}
						}
						return nil
					}},
					{Name: "scatter-gather-intact", Check: func(r *Run) error {
						sc := cass(r)
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						defer cancel()
						snaps, err := clients(r)[0].SnapshotGlobalMany(ctx, sc.Contexts)
						if err != nil {
							return fmt.Errorf("SnapshotGlobalMany: %w", err)
						}
						for i, name := range sc.Contexts {
							if want := fmt.Sprintf("s%d", i); snaps[name]["final"] != want {
								return fmt.Errorf("context %s: final = %q in scatter-gather, want %q", name, snaps[name]["final"], want)
							}
						}
						ctxs, err := clients(r)[0].GlobalContexts(ctx)
						if err != nil {
							return fmt.Errorf("GlobalContexts: %w", err)
						}
						if len(ctxs) < len(sc.Contexts) {
							return fmt.Errorf("GlobalContexts = %d contexts, want >= %d", len(ctxs), len(sc.Contexts))
						}
						return nil
					}},
				},
			},
		},
	}
}

// MixedWorkloadSoak drives the full §4.3 stack: a condor pool runs
// waves of vanilla science jobs with paradynd attached via the
// Figure-5B submit directives, then an MPI ring job, while the paradyn
// front-end ingests daemon telemetry. Everything must exit cleanly and
// the Performance Consultant must still name the planted bottleneck.
func MixedWorkloadSoak(name string, machines, vanillaJobs, iters int) *Scenario {
	return &Scenario{
		Name:        name,
		Description: fmt.Sprintf("%d-machine condor pool: %d vanilla jobs with paradynd attach + one MPI ring wave", machines, vanillaJobs),
		Hosts:       machines,
		Phases: []Phase{
			{
				Name: "spin-up",
				Run: func(r *Run) error {
					l, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						return err
					}
					fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
					if err != nil {
						return err
					}
					r.Put(feKey, fe)
					r.Defer(fe.Close)
					pool := condor.NewPool(condor.PoolOptions{
						NegotiationTimeout: 20 * time.Second,
						JobTimeout:         2 * time.Minute,
					})
					r.Put(poolKey, pool)
					r.Defer(pool.Close)
					for i := 0; i < machines; i++ {
						if _, err := pool.AddMachine(condor.MachineConfig{
							Name: fmt.Sprintf("node%d", i+1), Arch: "INTEL", OpSys: "LINUX", Memory: 256,
						}); err != nil {
							return err
						}
					}
					pool.Registry().RegisterTool("paradynd", paradyn.Tool())
					pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
						phases, prog := procsim.DefaultScienceApp(iters)
						return prog, procsim.PhasedSymbols(phases)
					})
					pool.Registry().RegisterProgram("ring", func(args []string) (procsim.Program, []string) {
						return mpisim.NewRingProgram(), mpisim.RingSymbols
					})
					return nil
				},
			},
			{
				Name: "vanilla-waves",
				Run: func(r *Run) error {
					fe := r.Get(feKey).(*paradyn.FrontEnd)
					pool := r.Get(poolKey).(*condor.Pool)
					host, port, err := net.SplitHostPort(fe.Addr())
					if err != nil {
						return err
					}
					submit := fmt.Sprintf(`universe = Vanilla
executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m%s -p%s -a%%pid"
queue
`, host, port)
					for done := 0; done < vanillaJobs; {
						wave := machines
						if left := vanillaJobs - done; left < wave {
							wave = left
						}
						jobs := make([]*condor.Job, 0, wave)
						for j := 0; j < wave; j++ {
							js, err := pool.Submit(submit)
							if err != nil {
								return fmt.Errorf("submit: %w", err)
							}
							jobs = append(jobs, js...)
						}
						for _, job := range jobs {
							start := time.Now()
							st, err := job.WaitExit(90 * time.Second)
							if err != nil {
								return fmt.Errorf("job %d: %w", job.ID, err)
							}
							r.Observe("job", time.Since(start))
							if st.Code != 0 {
								return fmt.Errorf("job %d exited %v, want 0", job.ID, st)
							}
							r.Count("vanilla_jobs", 1)
						}
						done += wave
					}
					return nil
				},
				Checkpoints: []Checkpoint{
					{Name: "all-daemons-reported-done", Check: func(r *Run) error {
						fe := r.Get(feKey).(*paradyn.FrontEnd)
						// Daemon names are per machine+rank, so the done
						// count is the distinct machines used, >= 1.
						if err := fe.WaitDone(1, 30*time.Second); err != nil {
							return err
						}
						if got := len(fe.Daemons()); got < 1 {
							return fmt.Errorf("front-end saw %d daemons, want >= 1", got)
						}
						return nil
					}},
				},
			},
			{
				Name: "mpi-wave",
				Run: func(r *Run) error {
					pool := r.Get(poolKey).(*condor.Pool)
					jobs, err := pool.Submit(`universe = MPI
executable = ring
machine_count = 3
queue
`)
					if err != nil {
						return fmt.Errorf("mpi submit: %w", err)
					}
					start := time.Now()
					st, err := jobs[0].WaitExit(90 * time.Second)
					if err != nil {
						return fmt.Errorf("mpi wait: %w", err)
					}
					r.Observe("mpi_job", time.Since(start))
					if st.Code != 2 { // 3-rank ring: 2 hops
						return fmt.Errorf("ring exited %v, want exit(2)", st)
					}
					if jobs[0].RanksDone() != 3 {
						return fmt.Errorf("ranks done = %d, want 3", jobs[0].RanksDone())
					}
					r.Count("mpi_ranks", 3)
					return nil
				},
			},
			{
				Name: "verify-telemetry",
				Run:  func(r *Run) error { return nil },
				Checkpoints: []Checkpoint{
					{Name: "pool-telemetry-ingested", Check: func(r *Run) error {
						fe := r.Get(feKey).(*paradyn.FrontEnd)
						snap := fe.PoolSnapshot()
						if snap.Counters["paradyn.samples.sent"] == 0 {
							return fmt.Errorf("pool snapshot has no paradyn.samples.sent; daemon telemetry never arrived")
						}
						r.Count("pool_samples_sent", snap.Counters["paradyn.samples.sent"])
						return nil
					}},
					{Name: "bottleneck-found", Check: func(r *Run) error {
						fe := r.Get(feKey).(*paradyn.FrontEnd)
						fn, share, ok := fe.Bottleneck()
						if !ok {
							return fmt.Errorf("performance consultant found no bottleneck")
						}
						if fn != "compute_forces" {
							return fmt.Errorf("bottleneck = %s (%.0f%%), want compute_forces", fn, share*100)
						}
						return nil
					}},
				},
			},
		},
	}
}
