package scenario

import (
	"fmt"
	"net"
	"sync"

	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

// Fleet is a pool of simulated tool daemons: the cheapest thing that
// speaks the daemon half of the tool protocol (REGISTER, TSAMPLE,
// DONE) at 10k+ instances. Each daemon is just a wire connection from
// its own simulated host into a reduction-tree leaf — no goroutine
// per daemon: the sink at the top of the plane never sends RUN, so a
// daemon connection never receives anything and a bounded worker pool
// (ForAll) can drive the whole fleet.
type Fleet struct {
	size  int
	leafs []string
	dial  func(i int, addr string) (net.Conn, error)

	mu    sync.Mutex
	conns []*wire.Conn
}

// NewFleet prepares (but does not connect) a fleet of size daemons;
// daemon i dials leafs[i%len(leafs)] via dial.
func NewFleet(size int, leafs []string, dial func(i int, addr string) (net.Conn, error)) *Fleet {
	return &Fleet{size: size, leafs: leafs, dial: dial, conns: make([]*wire.Conn, size)}
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return f.size }

// Name returns daemon i's registered name.
func (f *Fleet) Name(i int) string { return fmt.Sprintf("d%05d", i) }

func (f *Fleet) conn(i int) *wire.Conn {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conns[i]
}

func (f *Fleet) setConn(i int, c *wire.Conn) {
	f.mu.Lock()
	old := f.conns[i]
	f.conns[i] = c
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// register dials daemon i's leaf and sends REGISTER; resume marks a
// reconnect after Kill, which replaces the dead registration instead
// of tripping the duplicate check.
func (f *Fleet) register(i int, resume bool) error {
	raw, err := f.dial(i, f.leafs[i%len(f.leafs)])
	if err != nil {
		return fmt.Errorf("%s: dial: %w", f.Name(i), err)
	}
	wc := wire.NewConn(raw)
	m := wire.NewMessage("REGISTER").
		Set("daemon", f.Name(i)).
		Set("host", hostName(i)).
		SetInt("pid", i+1)
	if resume {
		m.Set("resume", "1")
	}
	if err := wc.Send(m); err != nil {
		wc.Close()
		return fmt.Errorf("%s: register: %w", f.Name(i), err)
	}
	f.setConn(i, wc)
	return nil
}

// Register connects and registers daemon i for the first time.
func (f *Fleet) Register(i int) error { return f.register(i, false) }

// Resume reconnects daemon i after a Kill, resume-replacing its
// registration at the leaf.
func (f *Fleet) Resume(i int) error { return f.register(i, true) }

// Kill abruptly closes daemon i's connection — the leaf sees the child
// die, retires its streams, and publishes a synthetic host_down.
func (f *Fleet) Kill(i int) {
	f.setConn(i, nil)
}

// PublishCounter sends one cumulative counter sample from daemon i.
func (f *Fleet) PublishCounter(i int, name string, value int64) error {
	return f.send(i, wire.TelemetrySample{Kind: wire.KindCounter, Name: name, Value: value})
}

// PublishHist sends one histogram sample from daemon i.
func (f *Fleet) PublishHist(i int, name string, h telemetry.HistogramSnapshot) error {
	return f.send(i, wire.TelemetrySample{Kind: wire.KindHist, Name: name, Hist: h})
}

func (f *Fleet) send(i int, ts wire.TelemetrySample) error {
	wc := f.conn(i)
	if wc == nil {
		return fmt.Errorf("%s: not registered", f.Name(i))
	}
	m, err := ts.Message()
	if err != nil {
		return err
	}
	if err := wc.Send(m); err != nil {
		return fmt.Errorf("%s: tsample: %w", f.Name(i), err)
	}
	return nil
}

// Done reports daemon i's exit status and closes its connection the
// polite way (DONE then EOF, so the leaf counts it toward aggregate
// completion instead of a host_down).
func (f *Fleet) Done(i int, status int) error {
	wc := f.conn(i)
	if wc == nil {
		return fmt.Errorf("%s: not registered", f.Name(i))
	}
	if err := wc.Send(wire.NewMessage("DONE").SetInt("status", status)); err != nil {
		return fmt.Errorf("%s: done: %w", f.Name(i), err)
	}
	return nil
}

// CloseAll drops every live connection.
func (f *Fleet) CloseAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, c := range f.conns {
		if c != nil {
			c.Close()
			f.conns[i] = nil
		}
	}
}

// ForAll runs fn(i) for every daemon index on a bounded worker pool
// (workers ≤ 0 means 128) and returns the first error with a count of
// how many failed.
func (f *Fleet) ForAll(workers int, fn func(i int) error) error {
	return ForEach(f.size, workers, fn)
}

// ForEach is ForAll for an arbitrary index range — phases use it to
// drive per-job or per-shard work with the same bounded-parallelism
// policy as the fleet.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = 128
	}
	if workers > n {
		workers = n
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		failed int
	)
	idx := make(chan int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					failed++
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if first != nil {
		return fmt.Errorf("%d/%d failed, first: %w", failed, n, first)
	}
	return nil
}
