package tdp_test

// Scaling benchmarks: how the reproduction's mechanisms behave as the
// job, pool, or tool fan-out grows. These back the EXPERIMENTS.md
// scaling rows (E8 sweep, E-aux reduction network).

import (
	"fmt"
	"net"
	"testing"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/condor"
	"tdp/internal/mpisim"
	"tdp/internal/mrnet"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/rmkit"
	"tdp/internal/wire"
)

// BenchmarkMPIUniverseRanks measures end-to-end MPI job time (allocate
// N machines, rank-0-first startup, token ring, teardown) as ranks
// grow.
func BenchmarkMPIUniverseRanks(b *testing.B) {
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
			defer pool.Close()
			for i := 0; i < ranks; i++ {
				if _, err := pool.AddMachine(condor.MachineConfig{
					Name: fmt.Sprintf("m%d", i), Arch: "INTEL", OpSys: "LINUX", Memory: 128,
				}); err != nil {
					b.Fatal(err)
				}
			}
			pool.Registry().RegisterProgram("ring", func(args []string) (procsim.Program, []string) {
				return mpisim.NewRingProgram(), mpisim.RingSymbols
			})
			submit := fmt.Sprintf("universe = MPI\nexecutable = ring\nmachine_count = %d\nqueue\n", ranks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs, err := pool.Submit(submit)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := jobs[0].WaitExit(60 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLASSContexts measures attribute operations when the server
// hosts many simultaneous job contexts (an RM multiplexing many tools,
// §3.2).
func BenchmarkLASSContexts(b *testing.B) {
	for _, contexts := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("contexts=%d", contexts), func(b *testing.B) {
			srv := attrspace.NewServer()
			addr, err := srv.ListenAndServe("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			// Populate N live contexts.
			clients := make([]*attrspace.Client, contexts)
			for i := range clients {
				c, err := attrspace.Dial(nil, addr, fmt.Sprintf("job-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				c.Put("pid", "1")
				clients[i] = c
			}
			// Operate on the last one.
			c := clients[contexts-1]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Put("attr", "value"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkToolFanout compares the front-end ingesting samples from N
// daemons directly vs. through a reduction node — the §2 auxiliary
// service argument. Measured: time for every daemon to deliver one
// round of `funcs` samples and the front-end (or tree) to absorb them.
func BenchmarkToolFanout(b *testing.B) {
	const funcs = 8
	run := func(b *testing.B, daemons int, reduced bool) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
		if err != nil {
			b.Fatal(err)
		}
		defer fe.Close()

		target := fe.Addr()
		if reduced {
			nl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			node, err := mrnet.NewNode(mrnet.Config{
				Name: "agg", Listener: nl, ParentAddr: fe.Addr(),
				ExpectedChildren: daemons, FlushInterval: time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer node.Close()
			target = node.Addr()
		}

		// Register everyone first — a reduction node releases RUN only
		// once its expected fan-in has arrived.
		conns := make([]*wire.Conn, daemons)
		for i := range conns {
			raw, err := net.Dial("tcp", target)
			if err != nil {
				b.Fatal(err)
			}
			defer raw.Close()
			wc := wire.NewConn(raw)
			if err := wc.Send(wire.NewMessage("REGISTER").
				Set("daemon", fmt.Sprintf("d%d", i)).Set("host", "h").SetInt("pid", i)); err != nil {
				b.Fatal(err)
			}
			conns[i] = wc
		}
		for i, wc := range conns {
			if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
				b.Fatalf("RUN handshake for daemon %d: %v %v", i, m, err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for d, wc := range conns {
				for f := 0; f < funcs; f++ {
					if err := wc.Send(wire.NewMessage("SAMPLE").
						Set("fn", fmt.Sprintf("f%d", f)).
						SetInt("calls", i*daemons+d).
						SetInt("time_us", i)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(daemons*funcs), "samples/op")
	}
	for _, daemons := range []int{4, 16} {
		b.Run(fmt.Sprintf("direct/daemons=%d", daemons), func(b *testing.B) { run(b, daemons, false) })
		b.Run(fmt.Sprintf("reduced/daemons=%d", daemons), func(b *testing.B) { run(b, daemons, true) })
	}
}

// BenchmarkMRNetFanIn measures telemetry-stream fan-in: N daemons each
// publish one TSAMPLE round and the observability plane absorbs it —
// directly into the front-end, or through a 2- or 3-level reduction
// tree whose in-tree filters collapse the per-daemon streams so the
// front-end socket loop's message rate is independent of N (E16).
func BenchmarkMRNetFanIn(b *testing.B) {
	const daemons = 64
	run := func(b *testing.B, levels int) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
		if err != nil {
			b.Fatal(err)
		}
		defer fe.Close()

		addrs := make([]string, daemons)
		if levels == 0 {
			for i := range addrs {
				addrs[i] = fe.Addr()
			}
		} else {
			tree, err := mrnet.BuildReductionTree(mrnet.TreeConfig{
				ParentAddr:    fe.Addr(),
				Daemons:       daemons,
				FanOut:        8,
				Levels:        levels,
				FlushInterval: time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tree.Close()
			leaves := tree.LeafAddrs()
			for i := range addrs {
				addrs[i] = leaves[i%len(leaves)]
			}
		}

		conns := make([]*wire.Conn, daemons)
		for i := range conns {
			raw, err := net.Dial("tcp", addrs[i])
			if err != nil {
				b.Fatal(err)
			}
			defer raw.Close()
			wc := wire.NewConn(raw)
			if err := wc.Send(wire.NewMessage("REGISTER").
				Set("daemon", fmt.Sprintf("d%d", i)).Set("host", fmt.Sprintf("h%d", i))); err != nil {
				b.Fatal(err)
			}
			conns[i] = wc
		}
		for i, wc := range conns {
			if m, err := wc.Recv(); err != nil || m.Verb != "RUN" {
				b.Fatalf("RUN handshake for daemon %d: %v %v", i, m, err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, wc := range conns {
				ts := wire.TelemetrySample{Kind: wire.KindCounter, Name: "app.ops", Value: int64(i + 1)}
				m, err := ts.Message()
				if err != nil {
					b.Fatal(err)
				}
				if err := wc.Send(m); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(daemons), "tsamples/op")
	}
	b.Run(fmt.Sprintf("direct/daemons=%d", daemons), func(b *testing.B) { run(b, 0) })
	b.Run(fmt.Sprintf("tree2/daemons=%d", daemons), func(b *testing.B) { run(b, 2) })
	b.Run(fmt.Sprintf("tree3/daemons=%d", daemons), func(b *testing.B) { run(b, 3) })
}

// BenchmarkRMKitLaunch measures the bare TDP launch adapter without
// any pool machinery: the floor cost any RM pays.
func BenchmarkRMKitLaunch(b *testing.B) {
	rm, err := rmkit.NewForkRM(nil)
	if err != nil {
		b.Fatal(err)
	}
	defer rm.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := rm.Run(rmkit.JobSpec{
			Name: "exit", Program: procsim.NewExitingProgram(0), Symbols: procsim.StdSymbols,
		})
		if err != nil || st.Code != 0 {
			b.Fatalf("%v %v", st, err)
		}
	}
}
