package tdp_test

// Transport v2/v3 benchmarks (EXPERIMENTS.md): the same-host transport
// ladder (loopback TCP, unix socket, shared-memory ring), delta resync
// (SNAPD) bytes against a full snapshot for a small gap in a large
// context, and event latency under a concurrent bulk snapshot with and
// without stream multiplexing. The first two back PR acceptance
// criteria: shm beats unix beats TCP on the put round trip, and resync
// bytes are proportional to the gap, not the context.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

func BenchmarkSameHostPut(b *testing.B) {
	// grantShm toggles the server capability; wantShm asserts what the
	// dialed client actually negotiated, so the sub-benchmark names stay
	// honest (the unix row must not silently ride the ring).
	run := func(b *testing.B, dial attrspace.DialFunc, grantShm, wantShm bool) {
		srv := attrspace.NewServer()
		if !grantShm {
			srv.SetCaps(attrspace.CapsWithoutShm(srv.Caps())...)
		}
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatalf("serve: %v", err)
		}
		b.Cleanup(srv.Close)
		if _, err := srv.ListenUnixBeside(addr); err != nil {
			b.Fatalf("ListenUnixBeside: %v", err)
		}
		c, err := attrspace.Dial(dial, addr, "bench")
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		b.Cleanup(func() { c.Close() })
		if c.ShmActive() != wantShm {
			b.Fatalf("ShmActive = %v, want %v", c.ShmActive(), wantShm)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Put("attr", "value"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("tcp", func(b *testing.B) { run(b, attrspace.TCPDial, false, false) })
	// nil dial = AutoDial, which prefers the side socket for loopback;
	// the server withholds the shm cap so this measures the bare socket.
	b.Run("unix", func(b *testing.B) { run(b, nil, false, false) })
	// Full capability set: the unix bootstrap cuts over to the mmap ring
	// pair. On platforms without shm support this degenerates to unix.
	b.Run("shm", func(b *testing.B) { run(b, nil, true, wire.ShmSupported()) })
}

// resyncContext seeds a server with a large context and a small recent
// gap: size attributes total, the last gap of them written after the
// snapshot point. Returns the address and the pre-gap context seq.
func resyncContext(b *testing.B, size, gap int) (addr string, since uint64) {
	b.Helper()
	srv := attrspace.NewServer()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatalf("serve: %v", err)
	}
	b.Cleanup(srv.Close)
	c := benchClientAt(b, addr, "bench")
	pairs := make([]attrspace.KV, 0, 256)
	for i := 0; i < size-gap; i += 256 {
		pairs = pairs[:0]
		for j := i; j < i+256 && j < size-gap; j++ {
			pairs = append(pairs, attrspace.KV{Key: fmt.Sprintf("attr%06d", j), Value: "value-of-some-typical-length"})
		}
		if err := c.PutBatch(pairs); err != nil {
			b.Fatalf("PutBatch: %v", err)
		}
	}
	_, since, err = c.SnapshotSeq(context.Background())
	if err != nil {
		b.Fatalf("SnapshotSeq: %v", err)
	}
	for i := size - gap; i < size; i++ {
		if err := c.Put(fmt.Sprintf("attr%06d", i), "value-of-some-typical-length"); err != nil {
			b.Fatalf("Put: %v", err)
		}
	}
	return addr, since
}

func BenchmarkSessionResync(b *testing.B) {
	// 10k-attribute context, 1% gap: what a reconnecting session needs
	// after a brief outage. The rx-bytes/op metric is the acceptance
	// number — delta resync must move >=10x fewer bytes than the full
	// snapshot it replaces.
	const size, gap = 10000, 100
	measure := func(b *testing.B, fetch func(c *attrspace.Client, since uint64) error) {
		addr, since := resyncContext(b, size, gap)
		c := benchClientAt(b, addr, "bench")
		reg := telemetry.NewRegistry()
		c.SetTelemetry(reg, nil)
		rx := reg.Counter("wire.rx.bytes")
		b.ReportAllocs()
		b.ResetTimer()
		start := rx.Value()
		for i := 0; i < b.N; i++ {
			if err := fetch(c, since); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(rx.Value()-start)/float64(b.N), "rx-bytes/op")
	}
	b.Run("full", func(b *testing.B) {
		measure(b, func(c *attrspace.Client, _ uint64) error {
			snap, _, err := c.SnapshotSeq(context.Background())
			if err == nil && len(snap) != size {
				return fmt.Errorf("snapshot = %d entries", len(snap))
			}
			return err
		})
	})
	b.Run("delta", func(b *testing.B) {
		measure(b, func(c *attrspace.Client, since uint64) error {
			ops, full, _, err := c.SnapshotDelta(context.Background(), since)
			if err != nil {
				return err
			}
			if full != nil || len(ops) != gap {
				return fmt.Errorf("delta = %d ops, full=%v; want %d ops", len(ops), full != nil, gap)
			}
			return nil
		})
	})
}

func BenchmarkMuxFanout(b *testing.B) {
	// Event latency while a bulk snapshot streams on the same
	// connection. Without the mux the whole snapshot is one inline
	// frame and a concurrent event waits behind it; with mux + chunking
	// the event interleaves between bulk-stream parts. The event-wait
	// metric is the one to compare across the two sub-benchmarks.
	const size = 5000
	run := func(b *testing.B, v1 bool) {
		srv := attrspace.NewServer()
		if v1 {
			srv.SetCaps()
		}
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatalf("serve: %v", err)
		}
		b.Cleanup(srv.Close)
		watcher := benchClientAt(b, addr, "bench")
		writer := benchClientAt(b, addr, "bench")
		pairs := make([]attrspace.KV, 0, 256)
		for i := 0; i < size; i += 256 {
			pairs = pairs[:0]
			for j := i; j < i+256 && j < size; j++ {
				pairs = append(pairs, attrspace.KV{Key: fmt.Sprintf("attr%06d", j), Value: "value-of-some-typical-length"})
			}
			if err := writer.PutBatch(pairs); err != nil {
				b.Fatalf("PutBatch: %v", err)
			}
		}
		if err := watcher.Subscribe(); err != nil {
			b.Fatalf("Subscribe: %v", err)
		}
		var gen atomic.Int64
		arrived := make(chan int64, 64)
		watcher.SetEventHandler(func(ev attrspace.Event) {
			if ev.Attr == "signal" {
				arrived <- gen.Load()
			}
		})
		var eventWait int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gen.Store(int64(i))
			snapDone := make(chan error, 1)
			go func() {
				_, _, err := watcher.SnapshotSeq(context.Background())
				snapDone <- err
			}()
			t0 := time.Now()
			if err := writer.Put("signal", fmt.Sprint(i)); err != nil {
				b.Fatal(err)
			}
			for {
				if g := <-arrived; g == int64(i) {
					break
				}
			}
			eventWait += time.Since(t0).Nanoseconds()
			if err := <-snapDone; err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(eventWait)/float64(b.N), "event-ns/op")
	}
	b.Run("v1", func(b *testing.B) { run(b, true) })
	b.Run("mux", func(b *testing.B) { run(b, false) })
}
