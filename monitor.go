package tdp

import (
	"context"
	"fmt"
	"strconv"

	"tdp/internal/attrspace"
	"tdp/internal/procsim"
)

// This file implements the §2.3 monitoring and control division of
// labor. The RM is the single entity responsible for controlling the
// application and for observing its status; the RT learns about state
// changes from attributes the RM publishes, and requests control
// operations by writing request attributes the RM watches. This
// eliminates the conflicting-waiter semantics of real operating
// systems (see procsim.StatusRouting) and the race of two processes
// issuing control operations.

// MonitorProcess makes this handle (an RM) the status publisher for p:
// every kernel state change of the process is mirrored into the
// attribute space under AttrStatus, and the exit status is recorded as
// "exited:<status>". It returns a stop function; monitoring also ends
// when the process exits.
func (h *Handle) MonitorProcess(p *Process) (stop func(), err error) {
	k, err := h.kernel()
	if err != nil {
		return nil, err
	}
	sub := k.Subscribe()
	pid := p.PID()
	go func() {
		for e := range sub.Events() {
			if e.PID != pid {
				continue
			}
			switch e.Kind {
			case procsim.EventContinued:
				h.Put(AttrStatus, "running")
			case procsim.EventStopped:
				h.Put(AttrStatus, "stopped")
			case procsim.EventExited:
				h.Put(AttrStatus, "exited:"+e.Status.String())
				k.Cancel(sub)
				return
			}
		}
	}()
	return func() { k.Cancel(sub) }, nil
}

// RequestStart asks the RM to start (continue) the paused application:
// the RT writes AttrStartRequest, which the RM is watching via
// ServeStartRequests. Per §2.3 the RT never continues the application
// itself when the RM owns it — it coordinates the operation through
// the attribute space. (When the RT itself attached, Continue on its
// own Process handle is the direct path shown in Figure 3.)
func (h *Handle) RequestStart() error {
	return h.Put(AttrStartRequest, "1")
}

// ServeStartRequests blocks until the RT requests a start, then
// continues the process. RMs call it in a goroutine after creating a
// paused application. It returns the Continue error, or the ctx error
// when cancelled first.
func (h *Handle) ServeStartRequests(ctx context.Context, p *Process) error {
	if _, err := h.Get(ctx, AttrStartRequest); err != nil {
		return err
	}
	return p.Continue()
}

// WaitStatus blocks until AttrStatus reaches the wanted prefix (e.g.
// "running", "exited:") and returns the full status value. It consumes
// change notifications via subscription, so it observes every
// transition rather than polling.
func (h *Handle) WaitStatus(ctx context.Context, wantPrefix string) (string, error) {
	// Fast path: already there.
	if v, err := h.TryGet(AttrStatus); err == nil && hasPrefix(v, wantPrefix) {
		return v, nil
	}
	if err := h.lass.Subscribe(); err != nil {
		return "", err
	}
	// Check again to close the subscribe race.
	if v, err := h.TryGet(AttrStatus); err == nil && hasPrefix(v, wantPrefix) {
		return v, nil
	}
	for {
		select {
		case ev, ok := <-h.lass.Events():
			if !ok {
				return "", ErrClosed
			}
			if ev.Resync && ev.Op == "resync" {
				// Reconnect gap marker (Config.Resilient): transitions
				// may have been missed, and the replay that follows
				// carries only the latest value per attribute — so ask
				// for the current status directly rather than waiting
				// for an event that may never be re-sent.
				if v, err := h.TryGet(AttrStatus); err == nil && hasPrefix(v, wantPrefix) {
					return v, nil
				}
				continue
			}
			if ev.Attr == AttrStatus && ev.Op == "put" && hasPrefix(ev.Value, wantPrefix) {
				return ev.Value, nil
			}
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// ServeLASS starts an attribute space server on a real TCP address
// (use "127.0.0.1:0" for tests) and returns the server and its bound
// address. The same function serves for a CASS — the two differ only
// in placement (§2.1).
func ServeLASS(addr string) (*attrspace.Server, string, error) {
	srv := attrspace.NewServer()
	bound, err := srv.ListenAndServe(addr)
	if err != nil {
		return nil, "", fmt.Errorf("tdp: serve LASS: %w", err)
	}
	return srv, bound, nil
}

// ServeCachingLASS starts a LASS whose G* global verbs forward to the
// CASS at cassAddr through a subscription-invalidated read cache:
// steady-state global gets by local daemons are answered in one local
// hop, writes go through to the CASS (and stay read-your-writes for
// clients of this LASS). Daemons opt in with Config.GlobalViaLASS.
func ServeCachingLASS(addr, cassAddr string, dial attrspace.DialFunc) (*attrspace.Server, string, error) {
	srv := attrspace.NewServer()
	srv.EnableGlobalCache(cassAddr, attrspace.CacheConfig{Dial: dial})
	bound, err := srv.ListenAndServe(addr)
	if err != nil {
		srv.Close()
		return nil, "", fmt.Errorf("tdp: serve caching LASS: %w", err)
	}
	return srv, bound, nil
}

// FormatPID renders a pid the way attribute values carry it.
func FormatPID(pid procsim.PID) string { return strconv.Itoa(int(pid)) }
