# Build and verification entry points. `make tier1` is the gate every
# change must pass: vet + build + full test suite under the race
# detector + the seeded chaos suite. `make chaos` runs the fault-
# injection tests (reconnecting sessions through the netsim chaos
# transport) twice under the race detector with a pinned seed; vary
# the seed with `make chaos TDP_CHAOS_SEED=7` to explore other fault
# schedules. `make fuzz` is a short native-fuzzing smoke run over the
# two parsers that face untrusted bytes (the wire decoder and the
# ClassAd expression parser). `make bench` refreshes the committed
# hot-path baseline (BENCH_attrspace.json); `make benchdiff` re-runs
# the same suite and fails on a >20% ns/op regression against it.

GO ?= go

# The hot-path suite tracked in BENCH_attrspace.json: attribute space
# round trips, the wire codec micro-benchmarks, the scaling suite
# (sharded many-context fan-out, LASS global read cache, proxy relay),
# and the transport-v2 suite (same-host unix fast path, delta resync,
# mux fan-out). The parallel contention benchmark (AttrSpaceClients)
# stays out of the tracked set: RunParallel numbers swing 20%+ run to
# run on shared machines, which would make the benchdiff gate flaky.
# The scaling benchmarks and the CASS shard-scaling curve are
# contention/network shaped too, so they are recorded but excluded
# from the regression gate (GATE_EXCLUDE in benchdiff.sh); the wire
# codec benchmarks plus the two headline transport-v2 numbers
# (SameHostPut, SessionResync) are the opposite — hard-required by
# GATE_REQUIRE, so they can neither regress nor silently drop out of
# the tracked set.
BENCH_PATTERN ?= BenchmarkAttrSpacePut|BenchmarkAttrSpaceTryGet|BenchmarkAttrSpaceGetPresent|BenchmarkAttrSpaceAsync|BenchmarkWire|BenchmarkAttrSpaceManyContexts|BenchmarkGlobalGetCached|BenchmarkProxyRelay|BenchmarkMRNetFanIn|BenchmarkSameHostPut|BenchmarkSessionResync|BenchmarkMuxFanout|BenchmarkCASSSharded

# The chaos suite's fault-injection seed; pinned so CI runs are
# reproducible and a failure's schedule can be replayed exactly.
TDP_CHAOS_SEED ?= 1

.PHONY: all tier1 vet build test race chaos fuzz bench benchdiff

all: tier1

tier1: vet build race chaos

chaos:
	TDP_CHAOS_SEED=$(TDP_CHAOS_SEED) $(GO) test ./internal/attrspace -run 'Chaos' -race -count=2

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecode -fuzztime=10s
	$(GO) test ./internal/classad -run='^$$' -fuzz=FuzzParse -fuzztime=10s

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 . | tee bench.out
	scripts/bench2json.sh < bench.out > BENCH_attrspace.json
	@rm -f bench.out
	@echo wrote BENCH_attrspace.json

benchdiff:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 . | scripts/bench2json.sh > bench.current.json
	scripts/benchdiff.sh BENCH_attrspace.json bench.current.json
	@rm -f bench.current.json
