# Build and verification entry points. `make tier1` is the gate every
# change must pass: vet + build + full test suite under the race
# detector + the seeded chaos suite. `make chaos` runs the fault-
# injection tests (reconnecting sessions through the netsim chaos
# transport) twice under the race detector with a pinned seed; vary
# the seed with `make chaos TDP_CHAOS_SEED=7` to explore other fault
# schedules. `make fuzz` is a short native-fuzzing smoke run over the
# parsers that face untrusted or operator-typed bytes (the wire
# decoder, the telemetry-sample codec, the ClassAd expression parser,
# the transport mux's _stream/_win fields, and the shard flag
# parsers). `make bench` refreshes the committed hot-path baseline
# (BENCH_attrspace.json); `make benchdiff` re-runs the same suite and
# fails on a >20% ns/op regression against it. `make bench-samehost`
# re-runs just the same-host transport ladder (tcp / unix socket /
# shm ring) and folds the trio into BENCH_attrspace.json in place.
#
# `make scenario-smoke` runs the pre-built pool scenarios at smoke
# scale under the race detector (part of tier1). `make scenario` is
# the full tier — 10k+ host planes, shard loss under load, churn and
# soak windows — and writes SCENARIO_<name>.json reports into the
# repo root; compare against the committed baselines with
# scripts/scenariodiff.sh (warn-only). Replay a failing run with
# `go test ./internal/scenario -run TestScenariosFull -args
# -scenario-seed=N` or TDP_SCENARIO_SEED=N.

GO ?= go

# The hot-path suite tracked in BENCH_attrspace.json: attribute space
# round trips, the wire codec micro-benchmarks, the scaling suite
# (sharded many-context fan-out, LASS global read cache, proxy relay),
# and the transport-v2 suite (same-host unix fast path, delta resync,
# mux fan-out). The parallel contention benchmark (AttrSpaceClients)
# stays out of the tracked set: RunParallel numbers swing 20%+ run to
# run on shared machines, which would make the benchdiff gate flaky.
# The scaling benchmarks and the CASS shard-scaling curve are
# contention/network shaped too, so they are recorded but excluded
# from the regression gate (GATE_EXCLUDE in benchdiff.sh); the wire
# codec benchmarks plus the headline transport numbers (the
# SameHostPut tcp/unix/shm ladder, SessionResync, MRNetFanIn) are the
# opposite — hard-required by GATE_REQUIRE, so they can neither
# regress nor silently drop out of the tracked set.
BENCH_PATTERN ?= BenchmarkAttrSpacePut|BenchmarkAttrSpaceTryGet|BenchmarkAttrSpaceGetPresent|BenchmarkAttrSpaceAsync|BenchmarkWire|BenchmarkAttrSpaceManyContexts|BenchmarkGlobalGetCached|BenchmarkProxyRelay|BenchmarkMRNetFanIn|BenchmarkSameHostPut|BenchmarkSessionResync|BenchmarkMuxFanout|BenchmarkCASSSharded

# The chaos suite's fault-injection seed; pinned so CI runs are
# reproducible and a failure's schedule can be replayed exactly.
TDP_CHAOS_SEED ?= 1

# The scenario tiers' run seed; 0 lets each run resolve its own
# (flag > TDP_SCENARIO_SEED env > 1).
TDP_SCENARIO_SEED ?= 1

.PHONY: all tier1 vet build test race chaos fuzz bench benchdiff bench-samehost scenario scenario-smoke scenariodiff

all: tier1

tier1: vet build race chaos scenario-smoke

chaos:
	TDP_CHAOS_SEED=$(TDP_CHAOS_SEED) $(GO) test ./internal/attrspace -run 'Chaos' -race -count=2

scenario-smoke:
	TDP_SCENARIO_SEED=$(TDP_SCENARIO_SEED) $(GO) test ./internal/scenario -run TestScenariosSmoke -race -count=1

scenario:
	TDP_SCENARIO=full TDP_SCENARIO_SEED=$(TDP_SCENARIO_SEED) TDP_SCENARIO_DIR=$(CURDIR) \
		$(GO) test ./internal/scenario -run TestScenariosFull -race -v -timeout 20m -count=1

scenariodiff:
	scripts/scenariodiff.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecode -fuzztime=10s
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzMux -fuzztime=10s
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzTSample -fuzztime=10s
	$(GO) test ./internal/classad -run='^$$' -fuzz=FuzzParse -fuzztime=10s
	$(GO) test ./internal/attrspace -run='^$$' -fuzz=FuzzParseShardSpec -fuzztime=10s
	$(GO) test ./internal/attrspace -run='^$$' -fuzz=FuzzParseShardAddrs -fuzztime=10s

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 . | tee bench.out
	scripts/bench2json.sh < bench.out > BENCH_attrspace.json
	@rm -f bench.out
	@echo wrote BENCH_attrspace.json

benchdiff:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 . | scripts/bench2json.sh > bench.current.json
	scripts/benchdiff.sh BENCH_attrspace.json bench.current.json
	@rm -f bench.current.json

bench-samehost:
	$(GO) test -run '^$$' -bench 'BenchmarkSameHostPut' -benchmem -count=1 . \
		| scripts/bench2json.sh > bench.samehost.json
	scripts/benchmerge.sh BENCH_attrspace.json bench.samehost.json '^BenchmarkSameHostPut' \
		> BENCH_attrspace.json.merged
	mv BENCH_attrspace.json.merged BENCH_attrspace.json
	@rm -f bench.samehost.json
	@echo folded SameHostPut tcp/unix/shm into BENCH_attrspace.json
