# Build and verification entry points. `make tier1` is the gate every
# change must pass: vet + build + full test suite under the race
# detector. `make fuzz` is a short native-fuzzing smoke run over the
# two parsers that face untrusted bytes (the wire decoder and the
# ClassAd expression parser).

GO ?= go

.PHONY: all tier1 vet build test race fuzz

all: tier1

tier1: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecode -fuzztime=10s
	$(GO) test ./internal/classad -run='^$$' -fuzz=FuzzParse -fuzztime=10s
