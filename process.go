package tdp

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"tdp/internal/procsim"
)

// This file implements the process-management services of §3.1:
// tdp_create_process (run | paused), tdp_attach, and
// tdp_continue_process, plus the control operations (stop, kill,
// detach, wait) the RM needs to own per §2.3.

// StartMode selects how CreateProcess leaves the new process.
type StartMode int

const (
	// StartRun starts the process immediately (§2.2 case 1 — tools
	// like Vampir that need no external initialization).
	StartRun StartMode = iota
	// StartPaused leaves the process created but stopped before its
	// first instruction — "stopped just after the execution of the
	// exec call" — so a tool can attach and instrument before main
	// (§2.2 case 2 — gdb, TotalView, Paradyn).
	StartPaused
)

// String names the mode as in the paper's figures ("run", "paused").
func (m StartMode) String() string {
	if m == StartPaused {
		return "paused"
	}
	return "run"
}

// ProcessSpec describes a process for CreateProcess.
type ProcessSpec struct {
	Executable string          // program name
	Args       []string        // argv
	Program    procsim.Program // code to run in the simulated process
	Symbols    []string        // discoverable function names
	Stdin      io.Reader       // RM-managed stdio (§2's stdio bullet)
	Stdout     io.Writer
	Stderr     io.Writer
	// RestartData resumes a checkpointable program from a saved point
	// (Condor standard-universe style migration); "" starts fresh.
	RestartData string
}

// Process is a TDP view of a managed process. Control operations go
// through the Handle that created or attached it, so the controlling
// identity is always explicit — the single-point-of-control discipline
// of §2.3.
type Process struct {
	h *Handle
	p *procsim.Process

	mu       sync.Mutex
	attached bool // this handle is the attached tracer
}

func (p *Process) isAttached() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attached
}

// CreateProcess creates a new application (or tool) process. With
// StartPaused the process is created but not started; the caller — in
// the TDP division of labor, the RM — then publishes its pid in the
// attribute space so the RT can attach. This is tdp_create_process.
func (h *Handle) CreateProcess(spec ProcessSpec, mode StartMode) (*Process, error) {
	k, err := h.kernel()
	if err != nil {
		return nil, err
	}
	defer h.observe("create_process")()
	h.traceStep("tdp_create_process", spec.Executable+","+mode.String())
	p, err := k.Spawn(procsim.Spec{
		Executable:  spec.Executable,
		Args:        spec.Args,
		Program:     spec.Program,
		Symbols:     spec.Symbols,
		Stdin:       spec.Stdin,
		Stdout:      spec.Stdout,
		Stderr:      spec.Stderr,
		Parent:      h.cfg.Identity,
		RestartData: spec.RestartData,
	}, mode == StartPaused)
	if err != nil {
		return nil, fmt.Errorf("tdp: create process: %w", err)
	}
	return &Process{h: h, p: p}, nil
}

// Attach takes control of an existing process by pid, pausing it if it
// is running (§2.2 case 3). For a process created with StartPaused the
// state is unchanged; the tool may then instrument it before main.
// This is tdp_attach.
func (h *Handle) Attach(pid procsim.PID) (*Process, error) {
	k, err := h.kernel()
	if err != nil {
		return nil, err
	}
	defer h.observe("attach")()
	h.traceStep("tdp_attach", "pid="+strconv.Itoa(int(pid)))
	p, err := k.Process(pid)
	if err != nil {
		return nil, fmt.Errorf("tdp: attach: %w", err)
	}
	if err := p.Attach(h.cfg.Identity); err != nil {
		return nil, fmt.Errorf("tdp: attach: %w", err)
	}
	tp := &Process{h: h, p: p, attached: true}
	h.trackAttached(tp)
	return tp, nil
}

// FindProcess returns a TDP process wrapper for an existing pid
// without attaching — what an RM uses to control a process it created
// in a previous incarnation.
func (h *Handle) FindProcess(pid procsim.PID) (*Process, error) {
	k, err := h.kernel()
	if err != nil {
		return nil, err
	}
	p, err := k.Process(pid)
	if err != nil {
		return nil, err
	}
	return &Process{h: h, p: p}, nil
}

// PID returns the process id.
func (p *Process) PID() procsim.PID { return p.p.PID() }

// Executable returns the process's program name.
func (p *Process) Executable() string { return p.p.Executable() }

// State returns the current run state.
func (p *Process) State() procsim.State { return p.p.State() }

// controller is the identity used for kernel control calls: the
// attached tracer's identity when this handle attached, otherwise the
// anonymous owner identity.
func (p *Process) controller() string {
	if p.isAttached() {
		return p.h.cfg.Identity
	}
	return ""
}

// Continue resumes a created or stopped process. After an RT finishes
// initializing an application it created or attached to, Continue is
// how execution (re)starts — tdp_continue_process.
func (p *Process) Continue() error {
	defer p.h.observe("continue_process")()
	p.h.traceStep("tdp_continue_process", "pid="+strconv.Itoa(int(p.p.PID())))
	return p.p.Continue(p.controller())
}

// Stop pauses the process at its next safe point.
func (p *Process) Stop() error {
	p.h.traceStep("tdp_stop_process", "pid="+strconv.Itoa(int(p.p.PID())))
	return p.p.Stop(p.controller())
}

// RequestStop asks the process to pause at its next safe point without
// waiting for the park. Safe to call from instrumentation callbacks
// executing on the process's own goroutine — the breakpoint mechanism.
func (p *Process) RequestStop() error {
	p.h.traceStep("tdp_stop_process", "pid="+strconv.Itoa(int(p.p.PID()))+",async")
	return p.p.RequestStop(p.controller())
}

// WaitStopped blocks until the process is parked (stopped, created, or
// exited).
func (p *Process) WaitStopped() { p.p.WaitStopped() }

// Kill terminates the process with the given signal name ("" means
// SIGKILL).
func (p *Process) Kill(signal string) error {
	p.h.traceStep("tdp_kill_process", "pid="+strconv.Itoa(int(p.p.PID())))
	return p.p.Kill(signal)
}

// Detach releases this handle's tracer attachment.
func (p *Process) Detach() error {
	p.mu.Lock()
	if !p.attached {
		p.mu.Unlock()
		return procsim.ErrNotAttached
	}
	p.attached = false
	p.mu.Unlock()
	p.h.untrackAttached(p)
	p.h.traceStep("tdp_detach", "pid="+strconv.Itoa(int(p.p.PID())))
	return p.p.Detach(p.h.cfg.Identity)
}

// Wait blocks until the process exits and returns its status as seen
// by this handle's role: the attached tracer waits on the tracer
// channel, anyone else on the parent channel (and may hit the §2.3
// status-routing quirk — the reason TDP centralizes monitoring in the
// RM and publishes status through the attribute space instead).
func (p *Process) Wait() (procsim.ExitStatus, error) {
	if p.isAttached() {
		st, ok := p.p.WaitTracer()
		if ok {
			return st, nil
		}
		// Routing delivered the status elsewhere, but the tracer
		// channel's close still signals exit; the kernel bookkeeping
		// has the status (a tracer can always inspect its tracee).
		if snap, recorded := p.p.ExitStatusSnapshot(); recorded {
			return snap, nil
		}
		return procsim.ExitStatus{}, procsim.ErrStatusStolen
	}
	return p.p.WaitParent()
}

// ExitStatus returns the recorded status after exit (authoritative
// bookkeeping, independent of routing). ok is false while alive.
func (p *Process) ExitStatus() (procsim.ExitStatus, bool) {
	return p.p.ExitStatusSnapshot()
}

// Symbols lists the functions a tool can instrument ("parsing the
// executable" in Paradyn's terms).
func (p *Process) Symbols() []string { return p.p.Symbols() }

// CheckpointData returns the program's latest saved checkpoint (see
// procsim.ProcContext.SaveCheckpoint) and whether one exists.
func (p *Process) CheckpointData() (string, bool) { return p.p.CheckpointData() }

// InsertProbe adds entry/exit instrumentation at a named function. The
// handle must be the attached tracer and the process paused — the
// Dyninst discipline that motivates the create-paused handshake.
func (p *Process) InsertProbe(point string, onEntry, onExit func(*procsim.ProcContext)) (int, error) {
	if !p.isAttached() {
		return 0, procsim.ErrNotAttached
	}
	return p.p.InsertProbe(p.h.cfg.Identity, point, onEntry, onExit)
}

// RemoveProbe removes instrumentation by probe id.
func (p *Process) RemoveProbe(id int) error {
	if !p.isAttached() {
		return procsim.ErrNotAttached
	}
	return p.p.RemoveProbe(p.h.cfg.Identity, id)
}

// PublishPID stores the process's pid under AttrPID — the step where
// the RM "sends information to the RT that identifies the application
// process" (§2.2).
func (h *Handle) PublishPID(p *Process) error {
	return h.Put(AttrPID, strconv.Itoa(int(p.PID())))
}

// GetPID blocks until the RM publishes AttrPID and parses it — the
// step where paradynd "immediately asks for the application pid"
// (§4.3 step 3).
func (h *Handle) GetPID(ctx context.Context) (procsim.PID, error) {
	v, err := h.Get(ctx, AttrPID)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("tdp: bad %s attribute %q: %w", AttrPID, v, err)
	}
	return procsim.PID(n), nil
}
