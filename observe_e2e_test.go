package tdp_test

// End-to-end test of the observability plane (DESIGN.md §11): daemons
// publish telemetry streams through an mrnet reduction node to a
// paradyn front-end, the node's aggregated subtree is exposed through
// an attribute-space server's `STATS scope=tree`, and a monitoring
// client (what tdptop drives) reads one merged snapshot of the pool.

import (
	"context"
	"net"
	"testing"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/mrnet"
	"tdp/internal/paradyn"
	"tdp/internal/telemetry"
	"tdp/internal/wire"
)

func TestObservabilityPlaneEndToEnd(t *testing.T) {
	// Front-end: ingests SAMPLEs and TSAMPLEs.
	feListener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: feListener, AutoRun: true})
	if err != nil {
		t.Fatalf("NewFrontEnd: %v", err)
	}
	defer fe.Close()

	// One reduction node interposed between daemons and front-end.
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	node, err := mrnet.NewNode(mrnet.Config{
		Name:             "mrnet-root",
		Listener:         nl,
		ParentAddr:       fe.Addr(),
		ExpectedChildren: 2,
		FlushInterval:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	// Two daemons publish cumulative telemetry streams.
	for i, val := range []int64{5, 7} {
		raw, err := net.Dial("tcp", node.Addr())
		if err != nil {
			t.Fatalf("dial node: %v", err)
		}
		defer raw.Close()
		wc := wire.NewConn(raw)
		name := []string{"d0", "d1"}[i]
		if err := wc.Send(wire.NewMessage("REGISTER").Set("daemon", name).Set("host", name+"-host")); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		ts := wire.TelemetrySample{Kind: wire.KindCounter, Name: "app.ops", Value: val}
		m, err := ts.Message()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := wc.Send(m); err != nil {
			t.Fatalf("tsample %s: %v", name, err)
		}
		go func() { wc.Recv() }() // drain the multicast RUN
	}

	// Attribute-space server (the CASS of the deployment) exposes the
	// node's rolled-up subtree through STATS scope=tree.
	srv := attrspace.NewServer()
	srv.SetTelemetry(telemetry.NewRegistry(), telemetry.NewTracer("cassd"))
	srv.SetStatsChildren(func() []telemetry.Snapshot {
		return []telemetry.Snapshot{node.TreeSnapshot()}
	})
	cassAddr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	defer srv.Close()

	// The monitoring client (tdptop's poll loop) sees one merged pool
	// snapshot: the daemons' streams and the tree's own topology
	// streams next to the CASS's registry.
	c, err := attrspace.Dial(nil, cassAddr, "default")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, snap, err := c.ServerStatsScope(context.Background(), "tree")
		if err != nil {
			t.Fatalf("ServerStatsScope: %v", err)
		}
		if snap.Counters["app.ops"] == 12 && snap.Counters["mrnet.tree.daemons"] == 2 {
			if snap.Counters["attrspace.ops.stats"] == 0 {
				t.Errorf("pool snapshot lost the CASS's own registry: %v", snap.Counters)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool snapshot never converged: %v", snap.Counters)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The same streams reached the front-end via the reduction uplink.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if fe.PoolSnapshot().Counters["app.ops"] == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("front-end pool snapshot never converged: %v", fe.PoolSnapshot().Counters)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
