package tdp_test

// Benchmark harness for the EXPERIMENTS.md rows. The paper's
// evaluation is qualitative (it has no performance tables), so these
// benchmarks are the quantitative characterization of the mechanisms
// TDP introduces, plus the ablations DESIGN.md §6 calls out:
//
//	E11  attribute space operations        BenchmarkAttrSpace*
//	E12  create vs attach launch paths     BenchmarkCreateVsAttach*
//	E13  proxy overhead                    BenchmarkProxy*
//	E15  event delivery                    BenchmarkServiceEvents,
//	                                       BenchmarkCallbackDelivery
//	abl  blocking get vs polling           BenchmarkBlockingGetVsPoll
//	sub  wire codec                        BenchmarkWire*
//	sub  matchmaking                       BenchmarkClassAdMatch
//	E5+  end-to-end job throughput         BenchmarkCondorJob*
//	E7   full Parador launch overhead      BenchmarkParadorLaunch*

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tdp"
	"tdp/internal/attrspace"
	"tdp/internal/classad"
	"tdp/internal/condor"
	"tdp/internal/netsim"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/proxy"
	"tdp/internal/wire"
)

// --- E11: attribute space characterization ---------------------------------

func benchServer(b *testing.B) string {
	b.Helper()
	srv := attrspace.NewServer()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatalf("serve: %v", err)
	}
	b.Cleanup(srv.Close)
	return addr
}

func benchClientAt(b *testing.B, addr, ctx string) *attrspace.Client {
	b.Helper()
	c, err := attrspace.Dial(nil, addr, ctx)
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func benchClient(b *testing.B, ctx string) *attrspace.Client {
	return benchClientAt(b, benchServer(b), ctx)
}

func BenchmarkAttrSpacePut(b *testing.B) {
	c := benchClient(b, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put("attr", "value"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttrSpacePutBatch(b *testing.B) {
	// The MPUT path: 8 pairs per round trip — the startup-publication
	// shape (pid, executable name, args, frontend address, ...).
	for _, size := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("pairs=%d", size), func(b *testing.B) {
			c := benchClient(b, "bench")
			pairs := make([]attrspace.KV, size)
			for i := range pairs {
				pairs[i] = attrspace.KV{Key: fmt.Sprintf("k%d", i), Value: "value"}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.PutBatch(pairs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "puts/op")
		})
	}
}

func BenchmarkAttrSpaceTryGet(b *testing.B) {
	c := benchClient(b, "bench")
	c.Put("attr", "value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TryGet("attr"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttrSpaceGetPresent(b *testing.B) {
	c := benchClient(b, "bench")
	c.Put("attr", "value")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(ctx, "attr"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttrSpaceAsyncPutPipelined(b *testing.B) {
	// Async puts keep many operations in flight on one connection —
	// the §3.3 motivation for tdp_async_put.
	c := benchClient(b, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	const window = 64
	pending := make([]<-chan attrspace.Result, 0, window)
	for i := 0; i < b.N; i++ {
		ch, err := c.PutAsync("attr", "value")
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, ch)
		if len(pending) == window {
			for _, ch := range pending {
				<-ch
			}
			pending = pending[:0]
		}
	}
	for _, ch := range pending {
		<-ch
	}
}

func BenchmarkAttrSpaceClients(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			srv := attrspace.NewServer()
			addr, err := srv.ListenAndServe("127.0.0.1:0")
			if err != nil {
				b.Fatalf("serve: %v", err)
			}
			defer srv.Close()
			conns := make([]*attrspace.Client, clients)
			for i := range conns {
				c, err := attrspace.Dial(nil, addr, "bench")
				if err != nil {
					b.Fatalf("dial: %v", err)
				}
				defer c.Close()
				conns[i] = c
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := conns[int(next.Add(1))%clients]
				for pb.Next() {
					if err := c.Put("attr", "value"); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --- ablation: blocking get vs client-side polling --------------------------

func BenchmarkBlockingGetVsPoll(b *testing.B) {
	// DESIGN.md §6 ablation. A consumer needs an attribute the
	// producer publishes after `wait`. The paper's blocking tdp_get
	// costs exactly one request regardless of the wait; client-side
	// polling costs round-trips proportional to the wait (reported as
	// reqs/op — the load each waiting daemon puts on the LASS).
	const wait = time.Millisecond
	b.Run("blocking-get", func(b *testing.B) {
		addr := benchServer(b)
		c := benchClientAt(b, addr, "bench-blk")
		producer := benchClientAt(b, addr, "bench-blk")
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			attr := fmt.Sprintf("k%d", i)
			done := make(chan struct{})
			go func() {
				time.Sleep(wait)
				producer.Put(attr, "v")
				close(done)
			}()
			if _, err := c.Get(ctx, attr); err != nil {
				b.Fatal(err)
			}
			<-done
		}
		b.ReportMetric(1, "reqs/op")
	})
	b.Run("polling", func(b *testing.B) {
		addr := benchServer(b)
		c := benchClientAt(b, addr, "bench-poll")
		producer := benchClientAt(b, addr, "bench-poll")
		b.ResetTimer()
		rounds := 0
		for i := 0; i < b.N; i++ {
			attr := fmt.Sprintf("k%d", i)
			done := make(chan struct{})
			go func() {
				time.Sleep(wait)
				producer.Put(attr, "v")
				close(done)
			}()
			for {
				rounds++
				if _, err := c.TryGet(attr); err == nil {
					break
				}
			}
			<-done
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "reqs/op")
	})
}

// --- E12: create vs attach launch paths -------------------------------------

func benchTDPPair(b *testing.B) (*tdp.Handle, *tdp.Handle, *procsim.Kernel) {
	b.Helper()
	srv, addr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		b.Fatalf("ServeLASS: %v", err)
	}
	b.Cleanup(srv.Close)
	k := procsim.NewKernel()
	rm, err := tdp.Init(tdp.Config{Context: "bench", LASSAddr: addr, Kernel: k, Identity: "RM"})
	if err != nil {
		b.Fatalf("Init: %v", err)
	}
	b.Cleanup(func() { rm.Exit() })
	rt, err := tdp.Init(tdp.Config{Context: "bench", LASSAddr: addr, Kernel: k, Identity: "RT"})
	if err != nil {
		b.Fatalf("Init: %v", err)
	}
	b.Cleanup(func() { rt.Exit() })
	return rm, rt, k
}

func BenchmarkCreateVsAttach(b *testing.B) {
	// Time from "job arrives" to "instrumented application running"
	// for the two §2.2 paths.
	spec := func() tdp.ProcessSpec {
		phases := []procsim.PhaseSpec{{Name: "work", Units: 1}}
		return tdp.ProcessSpec{
			Executable: "app",
			Program:    procsim.NewPhasedProgram(1, phases),
			Symbols:    procsim.PhasedSymbols(phases),
		}
	}
	b.Run("create-paused", func(b *testing.B) {
		rm, rt, _ := benchTDPPair(b)
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			ap, err := rm.CreateProcess(spec(), tdp.StartPaused)
			if err != nil {
				b.Fatal(err)
			}
			attr := fmt.Sprintf("pid-%d", i)
			rm.Put(attr, tdp.FormatPID(ap.PID()))
			v, err := rt.Get(ctx, attr)
			if err != nil {
				b.Fatal(err)
			}
			var pid int
			fmt.Sscanf(v, "%d", &pid)
			tp, err := rt.Attach(procsim.PID(pid))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tp.InsertProbe("work", func(*procsim.ProcContext) {}, nil); err != nil {
				b.Fatal(err)
			}
			if err := tp.Continue(); err != nil {
				b.Fatal(err)
			}
			tp.Wait()
		}
	})
	b.Run("attach-running", func(b *testing.B) {
		rm, rt, _ := benchTDPPair(b)
		for i := 0; i < b.N; i++ {
			sp := spec()
			sp.Program = procsim.NewSpinnerProgram()
			sp.Symbols = procsim.StdSymbols
			ap, err := rm.CreateProcess(sp, tdp.StartRun)
			if err != nil {
				b.Fatal(err)
			}
			tp, err := rt.Attach(ap.PID())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tp.InsertProbe("work", func(*procsim.ProcContext) {}, nil); err != nil {
				b.Fatal(err)
			}
			if err := tp.Continue(); err != nil {
				b.Fatal(err)
			}
			tp.Kill("")
			tp.Wait()
		}
	})
}

// --- E13: proxy overhead -----------------------------------------------------

func benchEchoHost(b *testing.B, h *netsim.Host, port int) {
	b.Helper()
	l, err := h.Listen(port)
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	b.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(c)
		}
	}()
}

func benchRoundTrips(b *testing.B, c net.Conn, payload []byte) {
	buf := make([]byte, len(payload))
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload) * 2))
}

func BenchmarkProxy(b *testing.B) {
	payload := make([]byte, 1024)
	b.Run("direct", func(b *testing.B) {
		nw := netsim.New()
		a := nw.AddHost("a")
		s := nw.AddHost("s")
		benchEchoHost(b, s, 1)
		c, err := a.Dial("s:1")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		benchRoundTrips(b, c, payload)
	})
	b.Run("forwarder", func(b *testing.B) {
		nw := netsim.New()
		a := nw.AddHost("a")
		gw := nw.AddHost("gw")
		s := nw.AddHost("s")
		benchEchoHost(b, s, 1)
		fw := proxy.NewForwarder(gw.Dial, "s:1")
		l, _ := gw.Listen(2)
		go fw.Serve(l)
		defer fw.Close()
		c, err := a.Dial("gw:2")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		benchRoundTrips(b, c, payload)
	})
	b.Run("connect-proxy", func(b *testing.B) {
		nw := netsim.New()
		a := nw.AddHost("a")
		gw := nw.AddHost("gw")
		s := nw.AddHost("s")
		benchEchoHost(b, s, 1)
		srv := proxy.NewServer(gw.Dial, nil)
		l, _ := gw.Listen(2)
		go srv.Serve(l)
		defer srv.Close()
		c, err := proxy.DialVia(a.Dial, "gw:2", "s:1")
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		benchRoundTrips(b, c, payload)
	})
}

// --- E15 + ablation: event delivery ------------------------------------------

func BenchmarkServiceEvents(b *testing.B) {
	h := benchHandle(b)
	h.Put("k", "v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		h.AsyncGet("k", func(tdp.Result, any) { close(done) }, nil)
		<-h.Activity()
		h.ServiceEvents()
		<-done
	}
}

func benchHandle(b *testing.B) *tdp.Handle {
	b.Helper()
	srv, addr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		b.Fatalf("ServeLASS: %v", err)
	}
	b.Cleanup(srv.Close)
	h, err := tdp.Init(tdp.Config{Context: "bench", LASSAddr: addr, Identity: "bench"})
	if err != nil {
		b.Fatalf("Init: %v", err)
	}
	b.Cleanup(func() { h.Exit() })
	return h
}

func BenchmarkCallbackDelivery(b *testing.B) {
	// Ablation (DESIGN.md §6): ServiceEvents (the paper's poll-loop
	// model) vs direct goroutine delivery. The poll-loop adds a queue
	// hop but guarantees callbacks run at safe points.
	b.Run("service-events", func(b *testing.B) {
		h := benchHandle(b)
		h.Put("k", "v")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan struct{})
			h.AsyncGet("k", func(tdp.Result, any) { close(done) }, nil)
			<-h.Activity()
			h.ServiceEvents()
			<-done
		}
	})
	b.Run("direct-goroutine", func(b *testing.B) {
		c := benchClient(b, "bench-direct")
		c.Put("k", "v")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch, err := c.GetAsync("k")
			if err != nil {
				b.Fatal(err)
			}
			<-ch
		}
	})
}

// --- wire codec ---------------------------------------------------------------

func BenchmarkWireEncode(b *testing.B) {
	m := wire.NewMessage("PUT").Set("id", "12345").Set("attr", "executable_name").Set("value", "foo")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Encode()) == 0 {
			b.Fatal("empty encode")
		}
	}
}

func BenchmarkWireAppendEncode(b *testing.B) {
	// The hot-path encoder: appends into a reused buffer, no sort, no
	// per-message allocation in steady state.
	m := wire.NewMessage("PUT").Set("id", "12345").Set("attr", "executable_name").Set("value", "foo")
	buf := make([]byte, 0, m.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.AppendEncode(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty encode")
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	payload := wire.NewMessage("PUT").Set("id", "12345").Set("attr", "executable_name").Set("value", "foo").Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeInto(b *testing.B) {
	// The hot-path decoder: reuses one Message (and its field map)
	// across frames, interning the protocol vocabulary.
	payload := wire.NewMessage("PUT").Set("id", "12345").Set("attr", "executable_name").Set("value", "foo").Encode()
	m := new(wire.Message)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeInto(m, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireConnSend(b *testing.B) {
	// Full framing path: encode + 4-byte header + one Write, through the
	// per-connection scratch buffer.
	c := wire.NewConn(struct {
		io.Writer
		io.Reader
	}{Writer: io.Discard, Reader: nil})
	m := wire.NewMessage("PUT").Set("id", "12345").Set("attr", "executable_name").Set("value", "foo")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- matchmaking ---------------------------------------------------------------

func BenchmarkClassAdMatch(b *testing.B) {
	job := classad.NewAd()
	job.SetInt("ImageSize", 64)
	job.SetExpr("Requirements", `Arch == "INTEL" && OpSys == "LINUX" && Memory >= 64`)
	job.SetExpr("Rank", "Memory")
	offers := make([]*classad.Ad, 100)
	for i := range offers {
		m := classad.NewAd()
		m.SetString("Arch", "INTEL")
		m.SetString("OpSys", "LINUX")
		m.SetInt("Memory", int64(32+i*8))
		m.SetExpr("Requirements", "TARGET.ImageSize <= MY.Memory")
		offers[i] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if best := classad.MatchBest(job, offers); best < 0 {
			b.Fatal("no match")
		}
	}
}

// --- E5/E7: end-to-end job costs -----------------------------------------------

func BenchmarkCondorJobPlain(b *testing.B) {
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 5 * time.Second})
	defer pool.Close()
	if _, err := pool.AddMachine(condor.MachineConfig{Name: "m", Arch: "INTEL", OpSys: "LINUX", Memory: 128}); err != nil {
		b.Fatal(err)
	}
	pool.Registry().RegisterProgram("app", func(args []string) (procsim.Program, []string) {
		return procsim.NewExitingProgram(0), procsim.StdSymbols
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs, err := pool.Submit("executable = app\nqueue\n")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := jobs[0].WaitExit(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParadorLaunch(b *testing.B) {
	// The cost the paper's design adds: the same job with and without
	// the TDP tool-daemon handshake (create paused, publish pid, tool
	// attach/instrument/continue).
	run := func(b *testing.B, submit string, tool bool) {
		pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 5 * time.Second})
		defer pool.Close()
		if _, err := pool.AddMachine(condor.MachineConfig{Name: "m", Arch: "INTEL", OpSys: "LINUX", Memory: 128}); err != nil {
			b.Fatal(err)
		}
		pool.Registry().RegisterProgram("app", func(args []string) (procsim.Program, []string) {
			phases := []procsim.PhaseSpec{{Name: "work", Units: 1}}
			return procsim.NewPhasedProgram(1, phases), procsim.PhasedSymbols(phases)
		})
		if tool {
			pool.Registry().RegisterTool("paradynd", paradyn.Tool())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jobs, err := pool.Submit(submit)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := jobs[0].WaitExit(30 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		run(b, "executable = app\nqueue\n", false)
	})
	b.Run("with-paradynd", func(b *testing.B) {
		run(b, `executable = app
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-a%pid"
queue
`, true)
	})
}
