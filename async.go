package tdp

import (
	"tdp/internal/attrspace"
)

// This file implements the asynchronous operations and event
// notification model of §3.2–§3.3: tdp_async_get, tdp_async_put, and
// tdp_service_event.
//
// An async operation returns immediately; its completion callback is
// queued, not run. The daemon's poll loop observes Activity() (the
// descriptor-activity analog) and calls ServiceEvents at a safe point,
// which runs the callbacks on the daemon's own goroutine. This is the
// design the paper settles on after rejecting signal- and thread-based
// delivery.

// Result is the completion value of an asynchronous get or put.
type Result struct {
	Attr  string // attribute name
	Value string // value read (get) or written (put)
	Err   error  // non-nil when the operation failed
}

// Callback receives the result of a completed asynchronous operation
// together with the caller-supplied argument (the paper's
// callback_arg). Callbacks run inside ServiceEvents.
type Callback func(r Result, arg any)

// AsyncGet starts a blocking get that completes in the background;
// when the attribute becomes available (or the operation fails), cb is
// queued and will run on the next ServiceEvents call. This is
// tdp_async_get.
func (h *Handle) AsyncGet(attribute string, cb Callback, arg any) error {
	done := h.observe("async_get")
	h.traceStep("tdp_async_get", attribute)
	ch, err := h.lass.GetAsync(attribute)
	if err != nil {
		done()
		return err
	}
	go h.post(ch, cb, arg, done)
	return nil
}

// AsyncPut starts a put that completes in the background; cb is queued
// once the server acknowledges (or the operation fails). This is
// tdp_async_put.
func (h *Handle) AsyncPut(attribute, value string, cb Callback, arg any) error {
	done := h.observe("async_put")
	h.traceStep("tdp_async_put", attribute+"="+value)
	ch, err := h.lass.PutAsync(attribute, value)
	if err != nil {
		done()
		return err
	}
	go h.post(ch, cb, arg, done)
	return nil
}

// post waits for the transport completion, records the operation's
// end-to-end latency, and queues the callback; the pending-event gauge
// tracks the backlog the poll loop has yet to service.
func (h *Handle) post(ch <-chan attrspace.Result, cb Callback, arg any, done func()) {
	r := <-ch
	done()
	res := Result{Attr: r.Attr, Value: r.Value, Err: r.Err}
	if cb == nil {
		return
	}
	h.queue.Post(func() { cb(res, arg) })
	h.noteEventDepth()
}

// ServiceEvents runs every queued completion callback on the calling
// goroutine, in completion order, and returns how many ran. Daemons
// call it from their poll loop after Activity fires; callbacks
// therefore execute at a well-known, safe point (§3.3). This is
// tdp_service_event.
func (h *Handle) ServiceEvents() int {
	defer h.observe("service_events")()
	h.traceStep("tdp_service_event", "")
	n := h.queue.Service()
	h.noteEventDepth()
	return n
}

// Activity returns a channel that becomes readable when completion
// callbacks are pending — the analog of the tdp file descriptor going
// active in the paper's poll-loop pseudo-code. Select on it alongside
// other descriptors, then call ServiceEvents.
func (h *Handle) Activity() <-chan struct{} { return h.queue.Activity() }

// PendingEvents reports the number of callbacks waiting for
// ServiceEvents.
func (h *Handle) PendingEvents() int { return h.queue.Len() }

// WatchUpdates subscribes to attribute change events in the local
// context. Each change queues a call to cb (delivered, like all TDP
// callbacks, through ServiceEvents). The paper uses this for the RM's
// optional immediate notification of process status changes (§2.3).
func (h *Handle) WatchUpdates(cb func(attr, value, op string)) error {
	if err := h.lass.Subscribe(); err != nil {
		return err
	}
	go func() {
		for ev := range h.lass.Events() {
			ev := ev
			if cb == nil {
				continue
			}
			h.queue.Post(func() { cb(ev.Attr, ev.Value, ev.Op) })
			h.noteEventDepth()
		}
	}()
	return nil
}
