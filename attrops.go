package tdp

import (
	"context"

	"tdp/internal/attrspace"
)

// KV is one attribute/value pair in a batched put.
type KV = attrspace.KV

// This file implements the synchronous attribute space operations
// (§3.2): tdp_put and tdp_get plus the convenience lookups built on
// them. All default to the local space (LASS); the *Global variants
// address the central space (CASS).
//
// Each operation counts under "tdp.ops.*" / "tdp.latency.*" when the
// handle has a telemetry registry, and the *Ctx variants propagate a
// caller span (telemetry.NewContext) to the server as _tid/_sid.

// Put stores attribute = value in the local space. It blocks until the
// value is visible to other participants (the paper's blocking
// tdp_put).
func (h *Handle) Put(attribute, value string) error {
	return h.PutCtx(context.Background(), attribute, value)
}

// PutCtx is Put with a context for cancellation and span propagation.
func (h *Handle) PutCtx(ctx context.Context, attribute, value string) error {
	defer h.observe("put")()
	h.traceStep("tdp_put", attribute+"="+value)
	return h.lass.PutCtx(ctx, attribute, value)
}

// PutBatch stores every pair in the local space in order and blocks
// until all are visible — one MPUT round trip instead of N PUTs, the
// natural shape for the paper's startup pattern (an RM publishing pid,
// executable name, args and frontend address together). Servers that
// predate MPUT degrade transparently to pipelined PUTs.
func (h *Handle) PutBatch(pairs []KV) error {
	return h.PutBatchCtx(context.Background(), pairs)
}

// PutBatchCtx is PutBatch with a context for cancellation and span
// propagation.
func (h *Handle) PutBatchCtx(ctx context.Context, pairs []KV) error {
	defer h.observe("put_batch")()
	if h.cfg.Trace != nil {
		for _, p := range pairs {
			h.traceStep("tdp_put", p.Key+"="+p.Value)
		}
	}
	return h.lass.PutBatchCtx(ctx, pairs)
}

// PutBatchGlobal is PutBatch against the global space. With a direct
// CASS connection it is one MPUT to the CASS; with GlobalViaLASS it is
// one GMPUT relayed (and cached) by the LASS.
func (h *Handle) PutBatchGlobal(pairs []KV) error {
	if h.cass == nil && !h.cfg.GlobalViaLASS {
		return ErrNoCASS
	}
	defer h.observe("put_batch_global")()
	if h.cfg.Trace != nil {
		for _, p := range pairs {
			h.traceStep("tdp_put_global", p.Key+"="+p.Value)
		}
	}
	if h.cfg.GlobalViaLASS {
		return h.lass.PutBatchGlobal(context.Background(), pairs)
	}
	return h.cass.PutBatch(pairs)
}

// Get blocks until the attribute exists in the local space and returns
// its value (the paper's blocking tdp_get). Cancel through ctx; a span
// carried by ctx propagates to the server.
func (h *Handle) Get(ctx context.Context, attribute string) (string, error) {
	defer h.observe("get")()
	h.traceStep("tdp_get", attribute)
	return h.lass.Get(ctx, attribute)
}

// TryGet returns the attribute's current value without blocking, or
// ErrNotFound.
func (h *Handle) TryGet(attribute string) (string, error) {
	defer h.observe("tryget")()
	return h.lass.TryGet(attribute)
}

// Delete removes an attribute from the local space.
func (h *Handle) Delete(attribute string) error {
	defer h.observe("delete")()
	return h.lass.Delete(attribute)
}

// Snapshot copies every attribute in the local space's context.
func (h *Handle) Snapshot() (map[string]string, error) {
	defer h.observe("snapshot")()
	return h.lass.Snapshot()
}

// PutGlobal stores attribute = value in the global space (directly on
// the CASS, or write-through the caching LASS with GlobalViaLASS).
func (h *Handle) PutGlobal(attribute, value string) error {
	return h.PutGlobalCtx(context.Background(), attribute, value)
}

// PutGlobalCtx is PutGlobal with a context for cancellation and span
// propagation.
func (h *Handle) PutGlobalCtx(ctx context.Context, attribute, value string) error {
	if h.cass == nil && !h.cfg.GlobalViaLASS {
		return ErrNoCASS
	}
	defer h.observe("put_global")()
	h.traceStep("tdp_put_global", attribute+"="+value)
	if h.cfg.GlobalViaLASS {
		return h.lass.PutGlobal(ctx, attribute, value)
	}
	return h.cass.PutCtx(ctx, attribute, value)
}

// GetGlobal blocks until the attribute exists in the global space.
// With GlobalViaLASS a cached attribute is answered by the LASS in one
// local hop; only misses travel to the CASS.
func (h *Handle) GetGlobal(ctx context.Context, attribute string) (string, error) {
	if h.cass == nil && !h.cfg.GlobalViaLASS {
		return "", ErrNoCASS
	}
	defer h.observe("get_global")()
	h.traceStep("tdp_get_global", attribute)
	if h.cfg.GlobalViaLASS {
		return h.lass.GetGlobal(ctx, attribute)
	}
	return h.cass.Get(ctx, attribute)
}

// TryGetGlobal is the non-blocking global space lookup.
func (h *Handle) TryGetGlobal(attribute string) (string, error) {
	if h.cass == nil && !h.cfg.GlobalViaLASS {
		return "", ErrNoCASS
	}
	defer h.observe("tryget_global")()
	if h.cfg.GlobalViaLASS {
		return h.lass.TryGetGlobal(context.Background(), attribute)
	}
	return h.cass.TryGet(attribute)
}

// HasGlobal reports whether this handle can reach a global space —
// through its own CASS connection or a caching LASS.
func (h *Handle) HasGlobal() bool { return h.cass != nil || h.cfg.GlobalViaLASS }

// globalManyAPI is the multi-context surface of the sharded global
// space. It is asserted rather than part of attrspace.API so that
// custom API implementations predating it keep compiling.
type globalManyAPI interface {
	SnapshotGlobalMany(ctx context.Context, contexts []string) (map[string]map[string]string, error)
	GlobalContexts(ctx context.Context) ([]string, error)
}

// SnapshotGlobalMany snapshots several global contexts at once through
// the caching LASS (one GSNAPM round trip; on a sharded CASS pool the
// LASS fetches each context from its owning shard concurrently). The
// result maps context name → attribute snapshot.
func (h *Handle) SnapshotGlobalMany(ctx context.Context, contexts []string) (map[string]map[string]string, error) {
	if !h.cfg.GlobalViaLASS {
		return nil, ErrNoCASS
	}
	api, ok := h.lass.(globalManyAPI)
	if !ok {
		return nil, attrspace.ErrNoGlobal
	}
	defer h.observe("snapshot_global_many")()
	return api.SnapshotGlobalMany(ctx, contexts)
}

// GlobalContexts lists the context names alive in the global space —
// on a sharded CASS pool, the union across every reachable shard.
func (h *Handle) GlobalContexts(ctx context.Context) ([]string, error) {
	if !h.cfg.GlobalViaLASS {
		return nil, ErrNoCASS
	}
	api, ok := h.lass.(globalManyAPI)
	if !ok {
		return nil, attrspace.ErrNoGlobal
	}
	defer h.observe("global_contexts")()
	return api.GlobalContexts(ctx)
}
