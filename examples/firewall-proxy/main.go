// Firewall/proxy (Figure 1 and §2.4 of the paper): the application
// runs on a private cluster node; the tool front-end is on the user's
// desktop outside. Direct connections are blocked by the firewall, so
// TDP hands the daemon the address of the resource manager's proxy on
// the gateway, which forwards the tool traffic.
//
// Run with:
//
//	go run ./examples/firewall-proxy
package main

import (
	"fmt"
	"log"
	"time"

	"tdp/internal/condor"
	"tdp/internal/netsim"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/proxy"
)

func main() {
	// The Figure-1 network: desktop | firewall+gateway | private node.
	nw := netsim.New()
	desktop := nw.AddHost("desktop")
	gateway := nw.AddHost("gateway")
	node := nw.AddHost("node1")
	nw.AddRule(netsim.BlockInbound("node1", "gateway"))
	nw.AddRule(netsim.BlockOutbound("node1", "gateway"))
	nw.AddRule(netsim.BlockInbound("desktop", "gateway"))

	// Paradyn front-end on the desktop.
	feListener, err := desktop.Listen(2090)
	if err != nil {
		log.Fatal(err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: feListener, AutoRun: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fe.Close()

	// Show the firewall doing its job.
	if _, err := node.Dial("desktop:2090"); err != nil {
		fmt.Printf("node1 -> desktop direct: %v\n", err)
	}

	// The RM's proxy on the gateway forwards to the front-end.
	fw := proxy.NewForwarder(gateway.Dial, "desktop:2090")
	fwListener, err := gateway.Listen(7000)
	if err != nil {
		log.Fatal(err)
	}
	go fw.Serve(fwListener)
	defer fw.Close()
	fmt.Println("RM proxy on gateway:7000 -> desktop:2090")

	// Condor pool on the private node; the submit file publishes the
	// PROXY address as the front-end address (the §2.4 rule: "the
	// host/port number will be that of the RM's proxy").
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	if _, err := pool.AddMachine(condor.MachineConfig{
		Name: "node1", Arch: "INTEL", OpSys: "LINUX", Memory: 256, NetHost: node,
	}); err != nil {
		log.Fatal(err)
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(60)
		return prog, procsim.PhasedSymbols(phases)
	})

	jobs, err := pool.Submit(`executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-a%pid"
+FrontendAddr = "gateway:7000"
queue
`)
	if err != nil {
		log.Fatal(err)
	}
	status, err := jobs[0].WaitExit(2 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if err := fe.WaitDone(1, time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\njob finished %s; profile crossed the firewall via the proxy:\n\n", status)
	fmt.Print(fe.Report())
	tunnels, bytes := fw.Stats()
	dials, blocked := nw.Stats()
	fmt.Printf("\nproxy relayed %d bytes over %d tunnel(s); firewall blocked %d of %d dials\n",
		bytes, tunnels, blocked, dials+blocked)
}
