// Interoperability matrix: the paper's m + n claim, executed. Three
// resource managers (the Condor miniature, a fork runner, a PBS-like
// queue) each run three run-time tools (paradynd, an event tracer, a
// breakpoint debugger). None of the nine pairings has pairing-specific
// code — both sides speak TDP.
//
// Run with:
//
//	go run ./examples/interop-matrix
package main

import (
	"fmt"
	"os"

	"tdp/internal/interop"
)

func main() {
	fmt.Println("running 3 RMs x 3 tools through unmodified TDP...")
	results := interop.RunMatrix()
	fmt.Println()
	fmt.Print(interop.FormatMatrix(results))
	fmt.Println()
	failed := 0
	for _, r := range results {
		fmt.Println(" ", r)
		if r.Detail != "" {
			fmt.Println("      evidence:", r.Detail)
		}
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d pairing(s) FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall 9 pairings passed: m + n adapters, m x n combinations")
}
