// Parador, MPI universe: the paper's second demonstrated
// configuration (§4.3). An MPI job is allocated machine_count
// machines; the rank-0 "master process" is created (paused) first and
// its paradynd attaches; only after that tool is in control are the
// remaining ranks created, each with its own paradynd. The front-end
// merges profiles from every rank.
//
// Run with:
//
//	go run ./examples/parador-mpi
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tdp/internal/condor"
	"tdp/internal/mpisim"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
)

const ranks = 3

func main() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fe.Close()
	host, port, _ := net.SplitHostPort(fe.Addr())

	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	for i := 0; i < ranks; i++ {
		if _, err := pool.AddMachine(condor.MachineConfig{
			Name: fmt.Sprintf("node%d", i+1), Arch: "INTEL", OpSys: "LINUX", Memory: 256,
		}); err != nil {
			log.Fatal(err)
		}
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	// The MPI payload: the token-ring program from the mpisim package.
	pool.Registry().RegisterProgram("ring", func(args []string) (procsim.Program, []string) {
		return mpisim.NewRingProgram(), mpisim.RingSymbols
	})

	submit := fmt.Sprintf(`universe = MPI
executable = ring
machine_count = %d
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-m%s -p%s -a%%pid"
+ToolDaemonOutput = "daemon.out"
queue
`, ranks, host, port)

	jobs, err := pool.Submit(submit)
	if err != nil {
		log.Fatal(err)
	}
	status, err := jobs[0].WaitExit(2 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if err := fe.WaitDone(ranks, time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MPI job finished %s across %v\n", status, jobs[0].Machines())
	fmt.Printf("(ring token made %d hops across %d ranks)\n\n", status.Code, ranks)
	fmt.Printf("daemons: %v\n\n", fe.Daemons())
	fmt.Println("merged profile across all ranks:")
	fmt.Print(fe.Report())
}
