// Migration: Condor's Standard-universe behavior on the simulated
// substrate. A checkpointable job runs on one machine; the machine is
// reclaimed (vacated) mid-run; the shadow renegotiates and the job
// resumes from its checkpoint on another machine without redoing the
// completed work. The paper lists checkpointing among the mechanisms
// Condor provides (§4.1); TDP's division of labor is what lets the RM
// own this lifecycle while tools attach around it.
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"tdp/internal/condor"
	"tdp/internal/procsim"
)

func main() {
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	for _, name := range []string{"machineA", "machineB"} {
		if _, err := pool.AddMachine(condor.MachineConfig{
			Name: name, Arch: "INTEL", OpSys: "LINUX", Memory: 256,
		}); err != nil {
			log.Fatal(err)
		}
	}

	const iterations = 600
	var executed atomic.Int64
	pool.Registry().RegisterProgram("simulation", func(args []string) (procsim.Program, []string) {
		return procsim.NewCheckpointableProgram(iterations, 200, func(int) {
			executed.Add(1)
		}), procsim.StdSymbols
	})

	jobs, err := pool.Submit("universe = Standard\nexecutable = simulation\nqueue\n")
	if err != nil {
		log.Fatal(err)
	}
	j := jobs[0]

	// Let the job do roughly a third of its work...
	for executed.Load() < iterations/3 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("job running on %s, %d/%d iterations done\n", j.Machine(), executed.Load(), iterations)

	// ...then reclaim its machine.
	fmt.Println("vacating the machine (owner came back)...")
	if err := pool.Vacate(j); err != nil {
		log.Fatal(err)
	}

	status, err := j.WaitExit(2 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished %s after %d restart(s)\n", status, j.Restarts())
	fmt.Printf("machine history: %v\n", j.Machines())
	fmt.Printf("resumed at iteration %d (exit code carries the resume point)\n", status.Code)
	fmt.Printf("total iterations executed: %d of %d (replay ≤ a few)\n", executed.Load(), iterations)
}
