// Quickstart: the smallest complete TDP interaction, straight from
// Figure 3A of the paper.
//
// A resource manager (RM) creates an application process suspended at
// exec and publishes its pid in the attribute space. A run-time tool
// (RT) — here just a few lines of code — blocks on the pid, attaches,
// inserts a probe before the application has executed a single
// instruction of main, and continues it. The probe therefore observes
// every call, which is the whole point of the create-paused handshake.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tdp"
	"tdp/internal/procsim"
)

func main() {
	// Every execution host runs a LASS; here one on loopback.
	lass, lassAddr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lass.Close()

	// One simulated machine ("the OS") shared by RM, RT, and AP.
	kernel := procsim.NewKernel()

	// --- the resource manager -------------------------------------------
	rm, err := tdp.Init(tdp.Config{
		Context:  "quickstart-job",
		LASSAddr: lassAddr,
		Kernel:   kernel,
		Identity: "RM",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rm.Exit()

	// Create the application, but do not start it (tdp_create_process
	// with the paused option).
	phases := []procsim.PhaseSpec{{Name: "work", Units: 10}}
	app, err := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "demo-app",
		Program:    procsim.NewPhasedProgram(5, phases),
		Symbols:    procsim.PhasedSymbols(phases),
	}, tdp.StartPaused)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RM: created %s pid=%d state=%s\n", app.Executable(), app.PID(), app.State())

	// Tell the tool where the application is (tdp_put of "pid").
	if err := rm.PublishPID(app); err != nil {
		log.Fatal(err)
	}

	// --- the run-time tool ------------------------------------------------
	rt, err := tdp.Init(tdp.Config{
		Context:  "quickstart-job",
		LASSAddr: lassAddr,
		Kernel:   kernel,
		Identity: "RT",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Exit()

	// Blocking tdp_get of the pid, then tdp_attach.
	pid, err := rt.GetPID(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	target, err := rt.Attach(pid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RT: attached to pid=%d, symbols=%v\n", pid, target.Symbols())

	// Instrument before main runs.
	calls := 0
	if _, err := target.InsertProbe("work", func(*procsim.ProcContext) { calls++ }, nil); err != nil {
		log.Fatal(err)
	}

	// tdp_continue_process: off it goes.
	if err := target.Continue(); err != nil {
		log.Fatal(err)
	}
	status, err := target.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RT: application finished %s; probe saw %d/5 work() calls\n", status, calls)
}
