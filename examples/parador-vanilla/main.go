// Parador, Vanilla universe: the paper's §4.3 pilot experiment.
//
// The Paradyn front-end starts first and publishes its port (as in the
// paper's tests, where "-p2090 -P2091" were written into the submit
// file by hand). Condor then runs a compute job whose submit file
// carries the TDP directives of Figure 5B: the starter creates the
// application suspended at exec, launches paradynd, and puts the pid
// into the machine's LASS; paradynd gets the pid, attaches,
// instruments every function, reports to the front-end, and continues
// the application. At the end the front-end's simplified Performance
// Consultant names the planted bottleneck (compute_forces, ~70% of
// the work).
//
// Run with:
//
//	go run ./examples/parador-vanilla
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
)

func main() {
	// 1. Paradyn front-end.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fe.Close()
	host, port, _ := net.SplitHostPort(fe.Addr())
	fmt.Printf("paradyn front-end on %s\n", fe.Addr())

	// 2. A one-machine Condor pool with paradynd and the science app
	//    installed.
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	if _, err := pool.AddMachine(condor.MachineConfig{
		Name: "pinguino", Arch: "INTEL", OpSys: "LINUX", Memory: 256,
	}); err != nil {
		log.Fatal(err)
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(100)
		return prog, procsim.PhasedSymbols(phases)
	})

	// 3. The Figure-5B submit file (ports filled in, as the paper did).
	submit := fmt.Sprintf(`universe = Vanilla
executable = science
output = outfile
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m%s -p%s -a%%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
queue
`, host, port)

	jobs, err := pool.Submit(submit)
	if err != nil {
		log.Fatal(err)
	}
	status, err := jobs[0].WaitExit(2 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if err := fe.WaitDone(1, time.Minute); err != nil {
		log.Fatal(err)
	}

	// 4. What the user sees in the Paradyn UI.
	fmt.Printf("\njob %d finished %s on %s\n\n", jobs[0].ID, status, jobs[0].Machine())
	fmt.Print(fe.Report())
	if fn, share, ok := fe.Bottleneck(); ok {
		fmt.Printf("\nPerformance Consultant: %s is the bottleneck (%.0f%% of non-main time)\n", fn, share*100)
	}

	// 5. The tool's own output file was transferred back to the submit
	//    machine, per the paper's data-file management interface.
	if data, ok := pool.SubmitFiles().Read("daemon.out"); ok {
		fmt.Printf("\ndaemon.out (%d bytes) begins:\n", len(data))
		if len(data) > 200 {
			data = data[:200]
		}
		fmt.Printf("%s...\n", data)
	}
}
