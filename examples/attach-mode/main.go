// Attach mode (Figure 3B of the paper): the application is already
// running under the resource manager — think of a long-running server
// or a job that starts misbehaving hours in — and the user decides,
// later, to point a tool at it. The RM launches a paradynd with an
// explicit pid ("-a<pid>"); the daemon attaches, which pauses the
// process at an unknown point in its execution, instruments it,
// resumes it, and profiles from there on.
//
// Run with:
//
//	go run ./examples/attach-mode
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tdp"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/toolapi"
)

func main() {
	lass, lassAddr, err := tdp.ServeLASS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lass.Close()
	kernel := procsim.NewKernel()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fe.Close()
	host, port, _ := net.SplitHostPort(fe.Addr())

	// The RM starts the application normally — no tool in sight.
	rm, err := tdp.Init(tdp.Config{
		Context: "attach-demo", LASSAddr: lassAddr, Kernel: kernel, Identity: "RM",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rm.Exit()

	phases, prog := procsim.DefaultScienceApp(3000)
	app, err := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "science", Program: prog, Symbols: procsim.PhasedSymbols(phases),
	}, tdp.StartRun)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application running: pid=%d\n", app.PID())

	// ... time passes; the application has been running a while ...
	time.Sleep(30 * time.Millisecond)

	// Now the user asks for a profile. The RM launches paradynd with
	// the pid on its command line — attach mode.
	env := toolapi.Env{
		Machine: "localhost", Kernel: kernel, LASSAddr: lassAddr, Context: "attach-demo",
	}
	args := []string{"-m" + host, "-p" + port, "-a" + tdp.FormatPID(app.PID())}
	daemon, err := rm.CreateProcess(tdp.ProcessSpec{
		Executable: "paradynd", Args: args, Program: paradyn.Tool()(env, args),
	}, tdp.StartRun)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paradynd launched mid-run with %v\n", args)

	status, err := app.Wait()
	if err != nil {
		log.Fatal(err)
	}
	daemon.Wait()
	if err := fe.WaitDone(1, time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\napplication finished %s; profile from attach point onward:\n\n", status)
	fmt.Print(fe.Report())
	if fn, share, ok := fe.Bottleneck(); ok {
		fmt.Printf("\nbottleneck (partial run): %s (%.0f%%)\n", fn, share*100)
	}
}
