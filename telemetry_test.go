package tdp

import (
	"context"
	"strings"
	"testing"
	"time"

	"tdp/internal/telemetry"
)

// TestHandleTelemetry: a handle configured with a registry counts
// every tdp_* operation and layers the attrspace client metrics on
// top.
func TestHandleTelemetry(t *testing.T) {
	addr := newLASS(t)
	reg := telemetry.NewRegistry()
	h := initT(t, Config{
		Context: "job", LASSAddr: addr, Identity: "rm",
		Telemetry: reg, Tracer: telemetry.NewTracer("rm"),
	})

	if h.Telemetry() != reg {
		t.Fatal("Telemetry() accessor does not return the configured registry")
	}
	if err := h.Put("pid", "42"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := h.Get(context.Background(), "pid"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := h.TryGet("pid"); err != nil {
		t.Fatalf("TryGet: %v", err)
	}

	done := make(chan struct{})
	if err := h.AsyncGet("pid", func(r Result, arg any) {
		if r.Err != nil || r.Value != "42" {
			t.Errorf("async result: %+v", r)
		}
		close(done)
	}, nil); err != nil {
		t.Fatalf("AsyncGet: %v", err)
	}
	<-h.Activity()
	h.ServiceEvents()
	<-done

	snap := reg.Snapshot()
	for _, c := range []string{
		"tdp.ops.put", "tdp.ops.get", "tdp.ops.tryget",
		"tdp.ops.async_get", "tdp.ops.service_events",
		"client.ops.put", "client.ops.get",
		"wire.tx.bytes", "wire.rx.bytes",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s = 0, want non-zero", c)
		}
	}
	if hs, ok := snap.Histograms["tdp.latency.put"]; !ok || hs.Count == 0 {
		t.Errorf("tdp.latency.put histogram empty")
	}
	if g, ok := snap.Gauges["tdp.events.pending"]; !ok || g != 0 {
		t.Errorf("tdp.events.pending = %d (present=%v), want 0 after ServiceEvents", g, ok)
	}
}

// TestHandleMonitorPublisher: the handle self-publishes registry
// metrics into its local space under the re-exported MonitorPrefix.
func TestHandleMonitorPublisher(t *testing.T) {
	addr := newLASS(t)
	reg := telemetry.NewRegistry()
	rm := initT(t, Config{
		Context: "job", LASSAddr: addr, Identity: "rm", Telemetry: reg,
	})
	rt := initT(t, Config{Context: "job", LASSAddr: addr, Identity: "rt"})

	if err := rm.Put("pid", "7"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	stop := rm.StartMonitorPublisher(5 * time.Millisecond)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	attr := MonitorPrefix + "rm.tdp.ops.put"
	if !strings.HasPrefix(attr, "tdp.monitor.") {
		t.Fatalf("MonitorPrefix re-export wrong: %q", attr)
	}
	v, err := rt.Get(ctx, attr)
	if err != nil {
		t.Fatalf("Get %s: %v", attr, err)
	}
	if v == "" || v == "0" {
		t.Errorf("published put counter = %q, want non-zero", v)
	}
}

// TestUninstrumentedHandleIsFree: a handle without telemetry must work
// exactly as before (nil registry, nil tracer — the default).
func TestUninstrumentedHandleIsFree(t *testing.T) {
	addr := newLASS(t)
	h := initT(t, Config{Context: "job", LASSAddr: addr, Identity: "rm"})
	if h.Telemetry() != nil || h.Tracer() != nil {
		t.Fatal("unconfigured accessors not nil")
	}
	if err := h.Put("a", "1"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := h.TryGet("a"); err != nil || v != "1" {
		t.Fatalf("TryGet = %q, %v", v, err)
	}
	if stop := h.StartMonitorPublisher(time.Millisecond); stop == nil {
		t.Fatal("StartMonitorPublisher returned nil stop")
	} else {
		stop()
	}
}
