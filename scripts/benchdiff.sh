#!/bin/sh
# benchdiff.sh BASELINE.json CURRENT.json
#
# Compare two BENCH_attrspace.json files (as produced by bench2json.sh)
# and exit 1 when any benchmark's ns/op regressed by more than
# THRESHOLD percent (default 20) against the committed baseline.
# Benchmarks present on only one side are reported but never fail the
# run — adding a benchmark must not break CI.
#
# Benchmarks whose names match GATE_EXCLUDE (an awk ERE) are reported
# as warnings but never fail the run: the contention- and
# network-shaped scaling benchmarks swing well past 20% run to run on
# shared machines, so gating on them would make CI flaky. They stay in
# the tracked set so drift is still visible in the report.
#
# Benchmarks matching GATE_REQUIRE are hard-gated: GATE_EXCLUDE never
# applies to them, and a required baseline benchmark missing from the
# current run fails too — the wire codec suite sits under every
# transport path, so it can neither regress nor silently drop out of
# the tracked set. SameHostPut and SessionResync graduated from the
# excluded list once a few releases of history showed them steady
# within the threshold: the same-host transport ladder (tcp/unix/shm)
# and the delta-resync path are headline transport numbers, so they
# gate now too. MRNetFanIn graduated the same way — the telemetry
# fan-in tree is the monitoring hot path, and its per-sample cost
# proved steady enough to hard-gate once the batched uplink landed.
# The CASSSharded scaling curve stays excluded like the other
# latency-shaped benchmarks — its ns/op is set by an injected link
# delay, and only the shards=4 : shards=1 ratio is meaningful.
set -eu
baseline=${1:?usage: benchdiff.sh baseline.json current.json}
current=${2:?usage: benchdiff.sh baseline.json current.json}
: "${THRESHOLD:=20}"
: "${GATE_EXCLUDE:=ManyContexts|GlobalGetCached|ProxyRelay|MuxFanout|CASSSharded}"
: "${GATE_REQUIRE:=^BenchmarkWire|^BenchmarkSameHostPut|^BenchmarkSessionResync|^BenchmarkMRNetFanIn}"

awk -v thr="$THRESHOLD" -v excl="$GATE_EXCLUDE" -v req="$GATE_REQUIRE" '
FNR == 1 { file++ }
match($0, /"name": "[^"]+"/) {
	name = substr($0, RSTART + 9, RLENGTH - 10)
	if (match($0, /"ns_per_op": [0-9.eE+-]+/)) {
		ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
		if (file == 1) base[name] = ns
		else { cur[name] = ns; order[m++] = name }
	}
}
END {
	bad = 0
	for (i = 0; i < m; i++) {
		name = order[i]
		if (!(name in base)) {
			printf "new        %-48s %14.1f ns/op\n", name, cur[name]
			continue
		}
		delta = (cur[name] - base[name]) / base[name] * 100
		flag = "ok"
		if (delta > thr) {
			if (excl != "" && name ~ excl && !(req != "" && name ~ req)) flag = "warn"
			else { flag = "REGRESSION"; bad = 1 }
		}
		printf "%-10s %-48s %12.1f -> %10.1f ns/op (%+6.1f%%)\n", \
			flag, name, base[name], cur[name], delta
	}
	for (name in base) if (!(name in cur)) {
		if (req != "" && name ~ req) {
			printf "MISSING    %-48s (required, gone from current run)\n", name
			bad = 1
		} else
			printf "missing    %-48s (in baseline only)\n", name
	}
	if (bad) printf "\nFAIL: ns/op regression beyond %s%% against baseline\n", thr
	exit bad
}' "$baseline" "$current"
