#!/bin/sh
# benchmerge.sh BASE.json NEW.json PATTERN
#
# Fold a partial benchmark run into a committed BENCH_attrspace.json:
# BASE's entries whose name matches PATTERN (an awk ERE) are replaced,
# in place, by all of NEW's entries; everything else (including the
# goos/goarch/cpu header) is kept from BASE. Emits the merged JSON on
# stdout. Both inputs must be in the one-entry-per-line layout that
# bench2json.sh produces — like benchdiff.sh, this parses with awk
# alone, no jq in the image.
set -eu
base=${1:?usage: benchmerge.sh base.json new.json pattern}
new=${2:?usage: benchmerge.sh base.json new.json pattern}
pat=${3:?usage: benchmerge.sh base.json new.json pattern}

awk -v pat="$pat" '
function entryname(line) {
	if (match(line, /"name": "[^"]+"/))
		return substr(line, RSTART + 9, RLENGTH - 10)
	return ""
}
FNR == 1 { file++ }
file == 1 && /^    \{"name"/ {
	line = $0
	sub(/,$/, "", line)
	if (entryname(line) ~ pat) {
		# First matching base entry marks where the replacements go.
		if (!slotted) { slot = n; entries[n++] = ""; slotted = 1 }
		next
	}
	entries[n++] = line
	next
}
file == 1 && /"goos"|"goarch"|"cpu"/ { meta[m++] = $0 }
file == 2 && /^    \{"name"/ {
	line = $0
	sub(/,$/, "", line)
	repl[r++] = line
}
END {
	if (r == 0) {
		print "benchmerge: no entries in new run" > "/dev/stderr"
		exit 1
	}
	if (!slotted) { slot = n; entries[n++] = "" } # pattern new to base: append
	printf "{\n"
	for (i = 0; i < m; i++) print meta[i]
	printf "  \"benchmarks\": [\n"
	total = n - 1 + r
	k = 0
	for (i = 0; i < n; i++) {
		if (i == slot) {
			for (j = 0; j < r; j++)
				printf "%s%s\n", repl[j], (++k < total ? "," : "")
		} else
			printf "%s%s\n", entries[i], (++k < total ? "," : "")
	}
	printf "  ]\n}\n"
}' "$base" "$new"
