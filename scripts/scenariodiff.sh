#!/bin/sh
# scenariodiff.sh [dir]
#
# Compare the SCENARIO_*.json reports in dir (default: repo root)
# against the committed baselines (git HEAD). For every phase the
# report shows the wall-clock delta, and for every tracked latency
# distribution the p99 delta.
#
# Warn-only by design, unlike benchdiff.sh: scenario timings are
# dominated by deliberate sleeps, drain windows, and retry backoff, so
# a hard gate would be flaky — but a scenario that suddenly takes 3x
# as long or whose op p99 jumps an order of magnitude is exactly the
# drift a reviewer wants surfaced. Exit status is always 0.
set -eu
dir=${1:-$(git rev-parse --show-toplevel)}
: "${THRESHOLD:=50}"

found=0
for cur in "$dir"/SCENARIO_*.json; do
	[ -e "$cur" ] || continue
	found=1
	name=$(basename "$cur")
	if ! git -C "$dir" cat-file -e "HEAD:$name" 2>/dev/null; then
		echo "new        $name (no committed baseline)"
		continue
	fi
	base=$(mktemp)
	git -C "$dir" show "HEAD:$name" >"$base"
	echo "== $name"
	awk -v thr="$THRESHOLD" '
	FNR == 1 { file++ }
	# Phase entries sit at indent 6 in the indent-2 report; checkpoint
	# names sit deeper, so the indent anchors keep them apart.
	/^      "name": /        { phase = $2; gsub(/[",]/, "", phase); inlat = 0 }
	/^      "duration_ms": / {
		v = $2 + 0
		if (file == 1) bdur[phase] = v
		else { cdur[phase] = v; if (!(phase in seen)) { seen[phase] = 1; order[np++] = phase } }
	}
	/^      "latencies": \{/ { inlat = 1 }
	inlat && /^        "[^"]+": \{/ { lat = $1; gsub(/[":]/, "", lat) }
	inlat && /^          "p99_us": / {
		v = $2 + 0; key = phase "/" lat
		if (file == 1) bp99[key] = v
		else { cp99[key] = v; if (!(key in lseen)) { lseen[key] = 1; lorder[nl++] = key } }
	}
	function flag(delta) { return (delta > thr || delta < -thr) ? "drift" : "ok" }
	END {
		for (i = 0; i < np; i++) {
			p = order[i]
			if (!(p in bdur)) { printf "  new      phase %-32s %12.1f ms\n", p, cdur[p]; continue }
			d = bdur[p] ? (cdur[p] - bdur[p]) / bdur[p] * 100 : 0
			printf "  %-8s phase %-32s %10.1f -> %10.1f ms (%+6.1f%%)\n", flag(d), p, bdur[p], cdur[p], d
		}
		for (i = 0; i < nl; i++) {
			k = lorder[i]
			if (!(k in bp99)) { printf "  new      p99   %-32s %12.1f us\n", k, cp99[k]; continue }
			d = bp99[k] ? (cp99[k] - bp99[k]) / bp99[k] * 100 : 0
			printf "  %-8s p99   %-32s %10.1f -> %10.1f us (%+6.1f%%)\n", flag(d), k, bp99[k], cp99[k], d
		}
	}' "$base" "$cur"
	rm -f "$base"
done
[ "$found" = 1 ] || echo "no SCENARIO_*.json reports in $dir (run make scenario first)"
exit 0
