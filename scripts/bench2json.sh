#!/bin/sh
# Convert `go test -bench -benchmem` output (stdin) into the
# BENCH_attrspace.json layout: one benchmark entry per line, so
# benchdiff.sh can parse it back with awk alone — no jq in the image.
awk '
/^(goos|goarch|cpu):/ {
	key = $1
	sub(/:$/, "", key)
	val = $0
	sub(/^[a-z]+: */, "", val)
	meta[key] = val
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "B/op") bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	entry = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (bytes != "") entry = entry sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") entry = entry sprintf(", \"allocs_per_op\": %s", allocs)
	entry = entry "}"
	entries[n++] = entry
}
END {
	printf "{\n"
	printf "  \"goos\": \"%s\",\n", meta["goos"]
	printf "  \"goarch\": \"%s\",\n", meta["goarch"]
	printf "  \"cpu\": \"%s\",\n", meta["cpu"]
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}'
