package tdp

import (
	"strconv"
	"time"

	"tdp/internal/telemetry"
)

// This file wires the unified telemetry layer (internal/telemetry)
// into the public TDP handle. Every tdp_* entry point counts an op and
// observes its latency under "tdp.*" when the Config carries a
// Registry; the configured Tracer flows into the attribute space
// clients so traced operations propagate _tid/_sid to the servers.

// MonitorPrefix is the attribute-name prefix under which daemons
// self-publish their metrics into the attribute space; re-exported
// from internal/telemetry so RM/RT code needs no extra import.
const MonitorPrefix = telemetry.MonitorPrefix

// Telemetry returns the handle's metrics registry (nil when the Config
// carried none).
func (h *Handle) Telemetry() *telemetry.Registry { return h.cfg.Telemetry }

// Tracer returns the handle's span tracer (nil when the Config carried
// none).
func (h *Handle) Tracer() *telemetry.Tracer { return h.cfg.Tracer }

// observe counts one tdp-level operation and returns the closure that
// records its latency; a no-op without a registry.
func (h *Handle) observe(op string) func() {
	reg := h.cfg.Telemetry
	if reg == nil {
		return func() {}
	}
	reg.Counter("tdp.ops." + op).Inc()
	lat := reg.Histogram("tdp.latency."+op, nil)
	start := time.Now()
	return func() { lat.Since(start) }
}

// noteEventDepth tracks the completion-callback backlog — the distance
// between async completions arriving and the daemon's poll loop
// servicing them.
func (h *Handle) noteEventDepth() {
	if reg := h.cfg.Telemetry; reg != nil {
		reg.Gauge("tdp.events.pending").Set(int64(h.queue.Len()))
	}
}

// StartMonitorPublisher periodically publishes this handle's registry
// into its local attribute space under MonitorPrefix + identity + ".",
// so any participant can watch the daemon with a plain Get — the same
// mechanism the paper uses for process status (§2.3). Counters and
// gauges publish their value; histograms publish ".count", ".p50" and
// ".p99". The returned stop function ends publication.
func (h *Handle) StartMonitorPublisher(interval time.Duration) (stop func()) {
	reg := h.cfg.Telemetry
	if reg == nil {
		return func() {}
	}
	prefix := MonitorPrefix + h.cfg.Identity + "."
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			// One batched put per tick: the whole snapshot crosses the
			// wire as a single MPUT instead of one round trip per metric.
			snap := reg.Snapshot()
			pairs := make([]KV, 0, len(snap.Counters)+len(snap.Gauges)+3*len(snap.Histograms))
			for name, v := range snap.Counters {
				pairs = append(pairs, KV{Key: prefix + name, Value: strconv.FormatInt(v, 10)})
			}
			for name, v := range snap.Gauges {
				pairs = append(pairs, KV{Key: prefix + name, Value: strconv.FormatInt(v, 10)})
			}
			for name, hs := range snap.Histograms {
				pairs = append(pairs,
					KV{Key: prefix + name + ".count", Value: strconv.FormatInt(hs.Count, 10)},
					KV{Key: prefix + name + ".p50", Value: strconv.FormatFloat(hs.Quantile(0.50), 'g', -1, 64)},
					KV{Key: prefix + name + ".p99", Value: strconv.FormatFloat(hs.Quantile(0.99), 'g', -1, 64)})
			}
			h.lass.PutBatch(pairs)
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}
