package tdp_test

// This file reproduces the paper's architectural figures as executable
// experiments (DESIGN.md E1, E2):
//
//   Figure 1 — remote execution with RM and RT behind a firewall: the
//   tool daemon on the private execution host reaches its front-end
//   only through the resource manager's proxy on the gateway.
//
//   Figure 2 — the same topology with the attribute space servers
//   added: a LASS on each execution host, the CASS beside the
//   front-ends, with LASS isolation between hosts.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"tdp"
	"tdp/internal/attrspace"
	"tdp/internal/condor"
	"tdp/internal/netsim"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/proxy"
	"tdp/internal/trace"
)

// figure1Net builds the Figure-1 network: the user's desktop (RM and
// RT front-ends), the gateway (firewall + RM proxy), and the private
// execution host. The firewall admits only gateway traffic in or out
// of node1, and blocks inbound connections to the desktop except from
// the gateway.
func figure1Net() (nw *netsim.Network, desktop, gateway, node *netsim.Host) {
	nw = netsim.New()
	desktop = nw.AddHost("desktop")
	gateway = nw.AddHost("gateway")
	node = nw.AddHost("node1")
	nw.AddRule(netsim.BlockInbound("node1", "gateway"))
	nw.AddRule(netsim.BlockOutbound("node1", "gateway"))
	nw.AddRule(netsim.BlockInbound("desktop", "gateway"))
	return
}

func TestFigure1Topology(t *testing.T) {
	rec := trace.New()
	nw, desktop, gateway, node := figure1Net()

	// Paradyn front-end on the desktop.
	feListener, err := desktop.Listen(2090)
	if err != nil {
		t.Fatalf("listen FE: %v", err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: feListener, AutoRun: true, Trace: rec})
	if err != nil {
		t.Fatalf("NewFrontEnd: %v", err)
	}
	defer fe.Close()

	// The private node cannot reach the front-end directly.
	if _, err := node.Dial("desktop:2090"); !errors.Is(err, netsim.ErrBlocked) {
		t.Fatalf("direct dial = %v, want firewall block", err)
	}

	// The RM establishes its proxy on the gateway, forwarding to the
	// front-end (§2.4: TDP "merely leverages existing" proxy
	// facilities).
	fw := proxy.NewForwarder(gateway.Dial, "desktop:2090")
	fwListener, err := gateway.Listen(7000)
	if err != nil {
		t.Fatalf("listen proxy: %v", err)
	}
	go fw.Serve(fwListener)
	defer fw.Close()

	// Condor pool whose execute machine lives on the private host; its
	// LASS binds on node1's simulated network.
	pool := condor.NewPool(condor.PoolOptions{Trace: rec, NegotiationTimeout: 2 * time.Second})
	defer pool.Close()
	if _, err := pool.AddMachine(condor.MachineConfig{
		Name: "node1", Arch: "INTEL", OpSys: "LINUX", Memory: 128, NetHost: node,
	}); err != nil {
		t.Fatalf("AddMachine: %v", err)
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(20)
		return prog, procsim.PhasedSymbols(phases)
	})

	// TDP hands the daemon the PROXY address, not the front-end's.
	submit := `executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -a%pid"
+FrontendAddr = "gateway:7000"
queue
`
	jobs, err := pool.Submit(submit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := jobs[0].WaitExit(30 * time.Second)
	if err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if st.Code != 0 {
		t.Errorf("exit = %v", st)
	}
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("front-end never heard from the daemon: %v", err)
	}
	// The profile crossed the firewall through the proxy.
	if fn, _, ok := fe.Bottleneck(); !ok || fn != "compute_forces" {
		t.Errorf("bottleneck = %q, %v", fn, ok)
	}
	tunnels, bytes := fw.Stats()
	if tunnels < 1 || bytes == 0 {
		t.Errorf("proxy stats = %d tunnels, %d bytes — traffic did not flow through the proxy", tunnels, bytes)
	}
	// The firewall blocked at least our one direct attempt.
	if _, blocked := nw.Stats(); blocked < 1 {
		t.Errorf("firewall blocked %d dials, want >= 1", blocked)
	}
}

func TestFigure2AttributeServers(t *testing.T) {
	// Figure 2 adds the attribute servers: a CASS on the front-end
	// host and a LASS per execution host. The front-end publishes its
	// address in the CASS ("port arguments should be published by
	// Paradyn front-end and disseminated to remote sites as attribute
	// values", §4.3); the submit side reads it there and the starter
	// disseminates it to the execution host's LASS.
	nw, desktop, gateway, node := figure1Net()
	nw.AddHost("node2")

	// CASS on the desktop.
	cassListener, err := desktop.Listen(4000)
	if err != nil {
		t.Fatalf("listen CASS: %v", err)
	}
	cass := attrspace.NewServer()
	go cass.Serve(cassListener)
	defer cass.Close()

	// Paradyn front-end on the desktop; it publishes its address into
	// the CASS.
	feListener, err := desktop.Listen(2090)
	if err != nil {
		t.Fatalf("listen FE: %v", err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: feListener, AutoRun: true})
	if err != nil {
		t.Fatalf("NewFrontEnd: %v", err)
	}
	defer fe.Close()

	feSide, err := tdp.Init(tdp.Config{
		Context:  "parador",
		LASSAddr: "desktop:4000", // the front-end host's local server doubles as its LASS
		CASSAddr: "desktop:4000",
		Dial:     func(addr string) (net.Conn, error) { return desktop.Dial(addr) },
		Identity: "paradyn-fe",
	})
	if err != nil {
		t.Fatalf("Init FE side: %v", err)
	}
	defer feSide.Exit()
	// Publish the proxy address (the reachable one) under the standard name.
	if err := feSide.PutGlobal(tdp.AttrFrontendAddr, "gateway:7000"); err != nil {
		t.Fatalf("PutGlobal: %v", err)
	}

	// RM proxy on the gateway.
	fw := proxy.NewForwarder(gateway.Dial, "desktop:2090")
	fwListener, _ := gateway.Listen(7000)
	go fw.Serve(fwListener)
	defer fw.Close()

	// The submit machine (also outside the private net) reads the
	// front-end address from the CASS.
	submitSide, err := tdp.Init(tdp.Config{
		Context:  "parador",
		LASSAddr: "desktop:4000",
		CASSAddr: "desktop:4000",
		Dial:     func(addr string) (net.Conn, error) { return desktop.Dial(addr) },
		Identity: "submit",
	})
	if err != nil {
		t.Fatalf("Init submit side: %v", err)
	}
	defer submitSide.Exit()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	feAddr, err := submitSide.GetGlobal(ctx, tdp.AttrFrontendAddr)
	if err != nil {
		t.Fatalf("GetGlobal: %v", err)
	}

	// Pool on the private node; the submit file carries the address
	// learned from the CASS.
	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 2 * time.Second})
	defer pool.Close()
	machine, err := pool.AddMachine(condor.MachineConfig{
		Name: "node1", Arch: "INTEL", OpSys: "LINUX", Memory: 128, NetHost: node,
	})
	if err != nil {
		t.Fatalf("AddMachine: %v", err)
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(10)
		return prog, procsim.PhasedSymbols(phases)
	})
	submit := `executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-a%pid"
+FrontendAddr = "` + feAddr + `"
queue
`
	jobs, err := pool.Submit(submit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// While the job runs, observe its attributes in node1's LASS —
	// reached through the gateway, the only host the firewall admits.
	probe, err := attrspace.Dial(
		func(addr string) (net.Conn, error) { return gateway.Dial(addr) },
		machine.LASSAddr(), "job-1")
	if err != nil {
		t.Fatalf("probe dial: %v", err)
	}
	defer probe.Close()
	probeCtx, probeCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer probeCancel()
	pidVal, err := probe.Get(probeCtx, tdp.AttrPID)
	if err != nil {
		t.Fatalf("pid never appeared in node1's LASS: %v", err)
	}
	if pidVal == "" {
		t.Error("empty pid attribute")
	}
	// The front-end address disseminated from the CASS reached the LASS.
	if fa, err := probe.Get(probeCtx, tdp.AttrFrontendAddr); err != nil || fa != "gateway:7000" {
		t.Errorf("frontend addr in LASS = %q, %v", fa, err)
	}

	if _, err := jobs[0].WaitExit(30 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v", err)
	}
	if err := fe.WaitDone(1, 10*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}

	// Figure 2 isolation: job attributes lived only in the node's
	// LASS; the CASS never saw a job context.
	for _, c := range cass.Space().Contexts() {
		if strings.HasPrefix(c, "job-") {
			t.Errorf("job context leaked into the CASS: %v", cass.Space().Contexts())
		}
	}
}
