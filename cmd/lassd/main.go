// Command lassd runs a Local Attribute Space Server (LASS): the
// per-execution-host attribute server of TDP §2.1. Resource manager
// and tool daemons on the host connect to it with tdp.Init.
//
// The server answers the STATS verb from its telemetry registry
// (inspect it live with `tdpattr stats`), and -monitor makes it
// self-publish metrics as tdp.monitor.lass.* attributes.
//
// With -cass the LASS also serves the G* global-forwarding verbs: it
// relays global operations to the CASS at that address through a
// read-through cache invalidated by its own CASS subscription, so
// steady-state global gets by local daemons cost one local hop. A
// comma-separated -cass list makes the LASS a shard router instead:
// each context's ops go to the shard its name hashes to, multi-context
// ops scatter-gather across the pool, and a dead shard fails only its
// own key range.
// -cache-max bounds cached entries per context; -event-buffer sizes
// the per-subscriber fan-out ring (larger absorbs bigger bursts before
// the coalesce/drop overflow policy engages).
//
// -debug-addr additionally serves pprof profiles and the registry as
// /metrics (Prometheus exposition) and /stats.json over HTTP.
//
// Usage:
//
//	lassd [-addr host:port | -addr unix:/path] [-unix] [-shm=false]
//	      [-loglevel debug|info|error|silent]
//	      [-monitor 5s] [-monitor-context name]
//	      [-cass host:port[,host:port...]] [-cache-max n] [-event-buffer n]
//	      [-debug-addr host:port]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/debughttp"
	"tdp/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4510", "listen address (host:port, or unix:/path for a unix-domain socket)")
	unixSock := flag.Bool("unix", false, "also listen on the conventional same-host unix socket beside -addr, so local clients skip the TCP stack")
	logLevel := flag.String("loglevel", "error", "log verbosity: debug|info|error|silent")
	monitor := flag.Duration("monitor", 0, "self-publish metrics as tdp.monitor.lass.* at this interval (0 disables)")
	monitorCtx := flag.String("monitor-context", "default", "context to publish monitor attributes into")
	cassAddr := flag.String("cass", "", "upstream CASS address(es); enables the G* global verbs with a subscription-invalidated read cache. A comma-separated list (\"host1:4500,host2:4500\") routes contexts across a sharded CASS pool by name hash — order must match every cassd's -shard i/n numbering")
	cacheMax := flag.Int("cache-max", 0, "max cached global entries per context (0 = default 4096)")
	eventBuf := flag.Int("event-buffer", attrspace.DefaultEventBuffer, "per-subscriber event ring size")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful shutdown bound: announce CLOSE to clients and finish in-flight replies for up to this long before closing (0 closes immediately)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, /metrics, and /stats.json over HTTP on this address (empty disables)")
	shm := flag.Bool("shm", true, "grant the shared-memory ring transport to same-host clients (unix-socket connections upgrade to an mmap ring pair after HELLO); -shm=false keeps every client on the socket byte stream")
	flag.Parse()

	srv := attrspace.NewServer()
	if !*shm {
		srv.SetCaps(attrspace.CapsWithoutShm(srv.Caps())...)
	}
	srv.SetLogger(telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), "lassd"))
	srv.SetTelemetry(telemetry.NewRegistry(), telemetry.NewTracer("lassd"))
	srv.SetEventBuffer(*eventBuf)
	if *cassAddr != "" {
		gc := srv.EnableGlobalCache(*cassAddr, attrspace.CacheConfig{MaxEntries: *cacheMax})
		if n := gc.ShardMap().Len(); n > 1 {
			log.Printf("lassd: global forwarding across %d CASS shards enabled", n)
		} else {
			log.Printf("lassd: global forwarding to CASS %s enabled", *cassAddr)
		}
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lassd: %v", err)
	}
	log.Printf("lassd: serving attribute space on %s", bound)
	if *unixSock {
		side, err := srv.ListenUnixBeside(bound)
		if err != nil {
			log.Fatalf("lassd: %v", err)
		}
		if side != "" {
			log.Printf("lassd: same-host fast path on %s", side)
		}
	}
	if *debugAddr != "" {
		dbg, stopDbg, err := debughttp.Serve(*debugAddr, func() telemetry.Snapshot {
			return srv.Telemetry().Snapshot()
		})
		if err != nil {
			log.Fatalf("lassd: %v", err)
		}
		defer stopDbg()
		log.Printf("lassd: debug endpoint on http://%s", dbg)
	}
	if *monitor > 0 {
		stop := srv.StartMonitorPublisher(*monitorCtx, "lass", *monitor)
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	snap := srv.Telemetry().Snapshot()
	log.Printf("lassd: shutting down; final telemetry:\n%s", snap.Text())
	if *drainTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("lassd: drain cut short: %v", err)
		}
		cancel()
	} else {
		srv.Close()
	}
}
