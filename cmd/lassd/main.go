// Command lassd runs a Local Attribute Space Server (LASS): the
// per-execution-host attribute server of TDP §2.1. Resource manager
// and tool daemons on the host connect to it with tdp.Init.
//
// Usage:
//
//	lassd [-addr host:port] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"tdp/internal/attrspace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4510", "listen address")
	verbose := flag.Bool("v", false, "log connection errors")
	flag.Parse()

	srv := attrspace.NewServer()
	if *verbose {
		srv.SetLogf(log.Printf)
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("lassd: %v", err)
	}
	log.Printf("lassd: serving attribute space on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	puts, gets, tryGets, deletes := srv.Stats()
	log.Printf("lassd: shutting down (puts=%d gets=%d trygets=%d deletes=%d)", puts, gets, tryGets, deletes)
	srv.Close()
}
