// Command tdpbench drives the non-benchmark experiments of
// EXPERIMENTS.md from the command line:
//
//	tdpbench -experiment matrix    the m+n interoperability matrix (E9)
//	tdpbench -experiment fig1      the Figure-1 firewall/proxy topology (E1)
//	tdpbench -experiment footprint the adapter-size report (E10)
//
// The timing experiments (E11–E15) are `go test -bench=.` benchmarks;
// see bench_test.go.
//
// With -metrics, the run also writes BENCH_<experiment>.json: a
// machine-readable record of the run (wall time plus a snapshot of the
// process-wide telemetry registry — wire traffic, attribute ops,
// proxy relay counts, Paradyn sample volume) for scripted comparison
// across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tdp/internal/condor"
	"tdp/internal/interop"
	"tdp/internal/netsim"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/proxy"
	"tdp/internal/telemetry"
)

func main() {
	exp := flag.String("experiment", "matrix", "experiment to run: matrix | fig1 | footprint")
	metrics := flag.Bool("metrics", false, "write BENCH_<experiment>.json with a telemetry snapshot")
	flag.Parse()
	start := time.Now()
	switch *exp {
	case "matrix":
		runMatrix()
	case "fig1":
		runFig1()
	case "footprint":
		runFootprint()
	default:
		fmt.Fprintf(os.Stderr, "tdpbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *metrics {
		writeMetrics(*exp, start)
	}
}

// benchRecord is the BENCH_*.json document shape. Telemetry is the
// process-wide registry, which every simulated daemon in this process
// counted into during the experiment.
type benchRecord struct {
	Experiment string             `json:"experiment"`
	StartedAt  time.Time          `json:"started_at"`
	DurationMS int64              `json:"duration_ms"`
	Telemetry  telemetry.Snapshot `json:"telemetry"`
}

func writeMetrics(experiment string, start time.Time) {
	rec := benchRecord{
		Experiment: experiment,
		StartedAt:  start.UTC(),
		DurationMS: time.Since(start).Milliseconds(),
		Telemetry:  telemetry.Default().Snapshot(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatalf("tdpbench: encode metrics: %v", err)
	}
	name := "BENCH_" + experiment + ".json"
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("tdpbench: write %s: %v", name, err)
	}
	fmt.Printf("metrics written to %s\n", name)
}

// runMatrix executes all RM × tool pairings (experiment E9).
func runMatrix() {
	fmt.Println("E9: m + n interoperability matrix (3 RMs x 3 tools)")
	start := time.Now()
	results := interop.RunMatrix()
	fmt.Print(interop.FormatMatrix(results))
	for _, r := range results {
		fmt.Println(" ", r)
		if r.Detail != "" {
			fmt.Println("      evidence:", r.Detail)
		}
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
	for _, r := range results {
		if !r.OK {
			os.Exit(1)
		}
	}
}

// runFig1 builds the Figure-1 topology and runs Parador across the
// firewall (experiment E1).
func runFig1() {
	fmt.Println("E1: Figure-1 topology — tool traffic crosses the firewall only via the RM proxy")
	nw := netsim.New()
	desktop := nw.AddHost("desktop")
	gateway := nw.AddHost("gateway")
	node := nw.AddHost("node1")
	nw.AddRule(netsim.BlockInbound("node1", "gateway"))
	nw.AddRule(netsim.BlockOutbound("node1", "gateway"))
	nw.AddRule(netsim.BlockInbound("desktop", "gateway"))

	feListener, err := desktop.Listen(2090)
	if err != nil {
		log.Fatalf("tdpbench: %v", err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: feListener, AutoRun: true})
	if err != nil {
		log.Fatalf("tdpbench: %v", err)
	}
	defer fe.Close()

	if _, err := node.Dial("desktop:2090"); err != nil {
		fmt.Printf("  direct dial node1 -> desktop: %v (expected)\n", err)
	}

	fw := proxy.NewForwarder(gateway.Dial, "desktop:2090")
	fw.Instrument(telemetry.Default())
	fwListener, _ := gateway.Listen(7000)
	go fw.Serve(fwListener)
	defer fw.Close()

	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	if _, err := pool.AddMachine(condor.MachineConfig{
		Name: "node1", Arch: "INTEL", OpSys: "LINUX", Memory: 256, NetHost: node,
	}); err != nil {
		log.Fatalf("tdpbench: %v", err)
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(50)
		return prog, procsim.PhasedSymbols(phases)
	})
	jobs, err := pool.Submit(`executable = science
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-a%pid"
+FrontendAddr = "gateway:7000"
queue
`)
	if err != nil {
		log.Fatalf("tdpbench: %v", err)
	}
	st, err := jobs[0].WaitExit(2 * time.Minute)
	if err != nil {
		log.Fatalf("tdpbench: %v", err)
	}
	if err := fe.WaitDone(1, time.Minute); err != nil {
		log.Fatalf("tdpbench: %v", err)
	}
	tunnels, bytes := fw.Stats()
	dials, blocked := nw.Stats()
	telemetry.Default().Gauge("netsim.dials").Set(int64(dials))
	telemetry.Default().Gauge("netsim.blocked").Set(int64(blocked))
	fmt.Printf("  job: %s\n", st)
	if fn, share, ok := fe.Bottleneck(); ok {
		fmt.Printf("  bottleneck found across the firewall: %s (%.0f%%)\n", fn, share*100)
	}
	fmt.Printf("  proxy: %d tunnel(s), %d bytes relayed\n", tunnels, bytes)
	fmt.Printf("  network: %d dials allowed, %d blocked by firewall\n", dials, blocked)
}

// runFootprint reports the §4.3 "< 500 lines" adapter claim for this
// codebase: the RM-side and tool-side TDP integration sizes.
func runFootprint() {
	fmt.Println("E10: TDP adapter footprint (paper: 'the total code involved was less than 500 lines')")
	files := map[string]string{
		"condor starter TDP path (runWithTool + helpers)": "internal/condor/starter.go",
		"rmkit RM adapter (Launch)":                       "internal/rmkit/launch.go",
		"paradynd TDP integration":                        "internal/paradyn/daemon.go",
	}
	for name, path := range files {
		n, err := countLines(path)
		if err != nil {
			fmt.Printf("  %-48s (run from the repository root: %v)\n", name, err)
			continue
		}
		fmt.Printf("  %-48s %4d lines\n", name, n)
	}
	fmt.Println("  see EXPERIMENTS.md E10 for the measured breakdown")
}

func countLines(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n, nil
}
