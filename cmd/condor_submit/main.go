// Command condor_submit parses and validates a Condor submit
// description file, including the TDP extensions of the paper's §4.3
// (+SuspendJobAtExec and the ToolDaemon* entries, Figure 5B), and
// prints the resulting job description. With -run it boots an
// in-process pool and actually executes the job against the built-in
// demo executables (see cmd/condor_pool for the full runner).
//
// Usage:
//
//	condor_submit [-run] job.submit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/tools"
)

func main() {
	run := flag.Bool("run", false, "execute the job on an in-process pool")
	machines := flag.Int("machines", 4, "pool size when -run is given")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: condor_submit [-run] job.submit")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("condor_submit: %v", err)
	}
	sf, err := condor.ParseSubmit(string(src))
	if err != nil {
		log.Fatalf("condor_submit: %v", err)
	}
	describe(sf)
	if !*run {
		return
	}

	pool := condor.NewPool(condor.PoolOptions{NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	for i := 0; i < *machines; i++ {
		if _, err := pool.AddMachine(condor.MachineConfig{
			Name: fmt.Sprintf("node%d", i+1), Arch: "INTEL", OpSys: "LINUX", Memory: 256,
		}); err != nil {
			log.Fatalf("condor_submit: %v", err)
		}
	}
	registerDemoPrograms(pool.Registry())

	jobs, err := pool.SubmitParsed(sf)
	if err != nil {
		log.Fatalf("condor_submit: %v", err)
	}
	for _, j := range jobs {
		st, err := j.WaitExit(2 * time.Minute)
		if err != nil {
			log.Printf("job %d: %v", j.ID, err)
			continue
		}
		fmt.Printf("job %d on %s: %s\n", j.ID, j.Machine(), st)
		if out := j.Output(); out != "" {
			fmt.Printf("--- output ---\n%s", out)
		}
		if tout := j.ToolOutput(); tout != "" {
			fmt.Printf("--- tool output ---\n%s", tout)
		}
	}
}

func describe(sf *condor.SubmitFile) {
	fmt.Printf("universe:     %s\n", sf.Universe)
	fmt.Printf("executable:   %s\n", sf.Executable)
	if len(sf.Arguments) > 0 {
		fmt.Printf("arguments:    %s\n", strings.Join(sf.Arguments, " "))
	}
	if sf.Universe == condor.UniverseMPI {
		fmt.Printf("machines:     %d\n", sf.MachineCount)
	}
	fmt.Printf("queue:        %d job(s)\n", sf.Queue)
	if sf.SuspendJobAtExec {
		fmt.Println("tdp:          job will be created suspended at exec")
	}
	if td := sf.ToolDaemon; td != nil {
		fmt.Printf("tool daemon:  %s %s\n", td.Cmd, strings.Join(td.Args, " "))
		if td.Output != "" {
			fmt.Printf("tool output:  %s\n", td.Output)
		}
	}
}

// registerDemoPrograms installs the executables and tools available to
// -run jobs.
func registerDemoPrograms(reg *condor.Registry) {
	reg.RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(50)
		return prog, procsim.PhasedSymbols(phases)
	})
	reg.RegisterProgram("foo", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(20)
		return prog, procsim.PhasedSymbols(phases)
	})
	reg.RegisterProgram("sleep", func(args []string) (procsim.Program, []string) {
		return procsim.NewSleeperProgram(200 * time.Millisecond), procsim.StdSymbols
	})
	reg.RegisterTool("paradynd", paradyn.Tool())
	reg.RegisterTool("tracer", tools.Tracer())
	reg.RegisterTool("debugger", tools.Debugger())
}
