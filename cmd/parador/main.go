// Command parador reproduces the paper's §4 experiment end to end:
// the Paradyn front-end starts first and listens for daemons; a Condor
// pool runs a job whose submit file carries the TDP directives of
// Figure 5B; the starter creates the application suspended at exec,
// launches paradynd, and publishes the pid through the machine's LASS;
// paradynd attaches, instruments, reports to the front-end, and
// continues the application; the front-end's Performance Consultant
// names the bottleneck.
//
// Usage:
//
//	parador [-iters N] [-mpi ranks] [-trace]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/trace"
)

func main() {
	iters := flag.Int("iters", 100, "application iterations")
	mpi := flag.Int("mpi", 0, "run as an MPI job with this many ranks (0 = vanilla)")
	showTrace := flag.Bool("trace", false, "print the TDP protocol trace")
	showSearch := flag.Bool("pc", false, "print the Performance Consultant search tree")
	showViz := flag.Bool("viz", false, "print time histograms for the hottest function")
	flag.Parse()

	rec := trace.New()

	// 1. The Paradyn front-end starts first (as in the paper's tests)
	//    and its ports go into the submit file.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("parador: %v", err)
	}
	fe, err := paradyn.NewFrontEnd(paradyn.FrontEndConfig{Listener: l, AutoRun: true, Trace: rec})
	if err != nil {
		log.Fatalf("parador: %v", err)
	}
	defer fe.Close()
	host, port, _ := net.SplitHostPort(fe.Addr())
	log.Printf("parador: paradyn front-end listening on %s", fe.Addr())

	// 2. A Condor pool with TDP-capable starters.
	machines := 1
	ranks := 1
	if *mpi > 0 {
		machines, ranks = *mpi, *mpi
	}
	pool := condor.NewPool(condor.PoolOptions{Trace: rec, NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	for i := 0; i < machines; i++ {
		if _, err := pool.AddMachine(condor.MachineConfig{
			Name: fmt.Sprintf("node%d", i+1), Arch: "INTEL", OpSys: "LINUX", Memory: 256,
		}); err != nil {
			log.Fatalf("parador: %v", err)
		}
	}
	pool.Registry().RegisterTool("paradynd", paradyn.Tool())
	n := *iters
	pool.Registry().RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(n)
		return prog, procsim.PhasedSymbols(phases)
	})

	// 3. The Figure-5B-style submit file.
	submit := fmt.Sprintf(`universe = %s
executable = science
output = outfile
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m%s -p%s -a%%pid"
+ToolDaemonOutput = "daemon.out"
queue
`, universe(*mpi), host, port)
	if *mpi > 0 {
		submit = fmt.Sprintf("machine_count = %d\n", *mpi) + submit
	}

	jobs, err := pool.Submit(submit)
	if err != nil {
		log.Fatalf("parador: %v", err)
	}
	st, err := jobs[0].WaitExit(5 * time.Minute)
	if err != nil {
		log.Fatalf("parador: %v", err)
	}
	if err := fe.WaitDone(ranks, time.Minute); err != nil {
		log.Fatalf("parador: %v", err)
	}

	// 4. Report.
	fmt.Printf("job finished: %s on %v\n\n", st, jobs[0].Machines())
	fmt.Println("merged profile (all daemons):")
	fmt.Print(fe.Report())
	if fn, share, ok := fe.Bottleneck(); ok {
		fmt.Printf("\nPerformance Consultant: bottleneck is %s (%.0f%% of non-main time)\n", fn, share*100)
	}
	if *showSearch {
		root, confirmed := fe.Consult(paradyn.DefaultSearchConfig())
		fmt.Println("\nPerformance Consultant search:")
		fmt.Print(paradyn.FormatSearch(root))
		for _, h := range confirmed {
			fmt.Printf("confirmed: %s (%.0f%%)\n", h.Name, h.Share*100)
		}
	}
	if *showViz {
		for _, d := range fe.Daemons() {
			fmt.Printf("\nhistograms for %s:\n", d)
			fmt.Print(fe.Visualization(d, 1, paradyn.HistogramOptions{Buckets: 16, Width: 32}))
		}
	}
	if data, ok := pool.SubmitFiles().Read("daemon.out"); ok {
		fmt.Printf("\ndaemon.out (transferred back, %d bytes)\n", len(data))
	}
	if *showTrace {
		fmt.Println("\n--- TDP protocol trace ---")
		for _, line := range rec.Strings() {
			fmt.Println(" ", line)
		}
	}
}

func universe(mpi int) string {
	if mpi > 0 {
		return "MPI"
	}
	return "Vanilla"
}
