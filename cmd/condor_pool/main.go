// Command condor_pool boots an in-process Condor pool (matchmaker,
// schedd, N execute machines each with its own LASS and simulated
// kernel), runs every submit file given on the command line, and
// reports results. It is the batch-driver counterpart to
// condor_submit -run.
//
// Usage:
//
//	condor_pool [-machines N] job1.submit [job2.submit ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tdp/internal/condor"
	"tdp/internal/paradyn"
	"tdp/internal/procsim"
	"tdp/internal/tools"
	"tdp/internal/trace"
)

func main() {
	machines := flag.Int("machines", 4, "number of execute machines")
	showTrace := flag.Bool("trace", false, "print the protocol trace after each job")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: condor_pool [-machines N] [-trace] job.submit ...")
		os.Exit(2)
	}

	rec := trace.New()
	pool := condor.NewPool(condor.PoolOptions{Trace: rec, NegotiationTimeout: 10 * time.Second})
	defer pool.Close()
	for i := 0; i < *machines; i++ {
		m, err := pool.AddMachine(condor.MachineConfig{
			Name: fmt.Sprintf("node%d", i+1), Arch: "INTEL", OpSys: "LINUX", Memory: 256,
		})
		if err != nil {
			log.Fatalf("condor_pool: %v", err)
		}
		log.Printf("condor_pool: machine %s up, LASS at %s", m.Name(), m.LASSAddr())
	}
	registerDemoPrograms(pool.Registry())

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("condor_pool: %v", err)
		}
		jobs, err := pool.Submit(string(src))
		if err != nil {
			log.Fatalf("condor_pool: %s: %v", path, err)
		}
		for _, j := range jobs {
			st, err := j.WaitExit(2 * time.Minute)
			if err != nil {
				log.Printf("condor_pool: job %d: %v", j.ID, err)
				continue
			}
			fmt.Printf("job %d (%s) on %v: %s\n", j.ID, j.Submit.Executable, j.Machines(), st)
			if tout := j.ToolOutput(); tout != "" {
				fmt.Printf("--- tool output ---\n%s", tout)
			}
		}
	}
	fmt.Println("--- queue ---")
	fmt.Print(pool.QueueSummary())
	if *showTrace {
		fmt.Println("--- protocol trace ---")
		for _, line := range rec.Strings() {
			fmt.Println(" ", line)
		}
	}
}

func registerDemoPrograms(reg *condor.Registry) {
	reg.RegisterProgram("science", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(50)
		return prog, procsim.PhasedSymbols(phases)
	})
	reg.RegisterProgram("foo", func(args []string) (procsim.Program, []string) {
		phases, prog := procsim.DefaultScienceApp(20)
		return prog, procsim.PhasedSymbols(phases)
	})
	reg.RegisterProgram("sleep", func(args []string) (procsim.Program, []string) {
		return procsim.NewSleeperProgram(200 * time.Millisecond), procsim.StdSymbols
	})
	reg.RegisterTool("paradynd", paradyn.Tool())
	reg.RegisterTool("tracer", tools.Tracer())
	reg.RegisterTool("debugger", tools.Debugger())
}
