// Command cassd runs the Central Attribute Space Server (CASS): the
// attribute server that lives on the host running the tool front-end
// (TDP §2.1, Figure 2). It is the same server as lassd — the paper's
// LASS/CASS distinction is placement, not implementation — but is
// provided as its own command so deployments read naturally.
//
// Usage:
//
//	cassd [-addr host:port] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"tdp/internal/attrspace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4500", "listen address")
	verbose := flag.Bool("v", false, "log connection errors")
	flag.Parse()

	srv := attrspace.NewServer()
	if *verbose {
		srv.SetLogf(log.Printf)
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("cassd: %v", err)
	}
	log.Printf("cassd: serving central attribute space on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("cassd: shutting down")
	srv.Close()
}
