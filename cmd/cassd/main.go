// Command cassd runs the Central Attribute Space Server (CASS): the
// attribute server that lives on the host running the tool front-end
// (TDP §2.1, Figure 2). It is the same server as lassd — the paper's
// LASS/CASS distinction is placement, not implementation — but is
// provided as its own command so deployments read naturally.
//
// Like lassd it answers the STATS verb from its telemetry registry
// (`tdpattr stats`) and can self-publish tdp.monitor.cass.* attributes.
// -debug-addr additionally serves pprof profiles and the registry as
// /metrics (Prometheus exposition) and /stats.json over HTTP.
//
// Usage:
//
//	cassd [-addr host:port | -addr unix:/path] [-unix] [-shm=false]
//	      [-loglevel debug|info|error|silent]
//	      [-monitor 5s] [-monitor-context name] [-event-buffer n]
//	      [-debug-addr host:port]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/debughttp"
	"tdp/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4500", "listen address (host:port, or unix:/path for a unix-domain socket)")
	unixSock := flag.Bool("unix", false, "also listen on the conventional same-host unix socket beside -addr, so local clients skip the TCP stack")
	logLevel := flag.String("loglevel", "error", "log verbosity: debug|info|error|silent")
	monitor := flag.Duration("monitor", 0, "self-publish metrics as tdp.monitor.cass.* at this interval (0 disables)")
	monitorCtx := flag.String("monitor-context", "default", "context to publish monitor attributes into")
	eventBuf := flag.Int("event-buffer", attrspace.DefaultEventBuffer, "per-subscriber event ring size; a CASS fanning out to many caching LASSes wants this large")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful shutdown bound: announce CLOSE to clients and finish in-flight replies for up to this long before closing (0 closes immediately)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, /metrics, and /stats.json over HTTP on this address (empty disables)")
	shard := flag.String("shard", "", "serve as shard i of an n-way partitioned CASS (\"i/n\", 0-based); contexts hashing to other shards are refused")
	shm := flag.Bool("shm", true, "grant the shared-memory ring transport to same-host clients (unix-socket connections upgrade to an mmap ring pair after HELLO); -shm=false keeps every client on the socket byte stream")
	flag.Parse()

	srv := attrspace.NewServer()
	if !*shm {
		srv.SetCaps(attrspace.CapsWithoutShm(srv.Caps())...)
	}
	srv.SetLogger(telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), "cassd"))
	srv.SetTelemetry(telemetry.NewRegistry(), telemetry.NewTracer("cassd"))
	srv.SetEventBuffer(*eventBuf)
	if *shard != "" {
		idx, total, err := attrspace.ParseShardSpec(*shard)
		if err != nil {
			log.Fatalf("cassd: %v", err)
		}
		if err := srv.SetShard(idx, total); err != nil {
			log.Fatalf("cassd: %v", err)
		}
		log.Printf("cassd: serving shard %d/%d of the partitioned CASS", idx, total)
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("cassd: %v", err)
	}
	log.Printf("cassd: serving central attribute space on %s", bound)
	if *unixSock {
		side, err := srv.ListenUnixBeside(bound)
		if err != nil {
			log.Fatalf("cassd: %v", err)
		}
		if side != "" {
			log.Printf("cassd: same-host fast path on %s", side)
		}
	}
	if *debugAddr != "" {
		dbg, stopDbg, err := debughttp.Serve(*debugAddr, func() telemetry.Snapshot {
			return srv.Telemetry().Snapshot()
		})
		if err != nil {
			log.Fatalf("cassd: %v", err)
		}
		defer stopDbg()
		log.Printf("cassd: debug endpoint on http://%s", dbg)
	}
	if *monitor > 0 {
		stop := srv.StartMonitorPublisher(*monitorCtx, "cass", *monitor)
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	snap := srv.Telemetry().Snapshot()
	log.Printf("cassd: shutting down; final telemetry:\n%s", snap.Text())
	if *drainTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("cassd: drain cut short: %v", err)
		}
		cancel()
	} else {
		srv.Close()
	}
}
