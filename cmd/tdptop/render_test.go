package main

import (
	"strings"
	"testing"
	"time"

	"tdp/internal/telemetry"
)

func TestRenderPoolView(t *testing.T) {
	prev := telemetry.Snapshot{
		Counters: map[string]int64{
			"paradyn.samples.sent": 1000,
			"mrnet.stream.updates": 400,
		},
	}
	h := telemetry.NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	cur := telemetry.Snapshot{
		Counters: map[string]int64{
			"paradyn.samples.sent":   1500,
			"mrnet.stream.updates":   600,
			"mrnet.stream.coalesced": 12,
			"mrnet.stream.lost":      3,
			"mrnet.tree.daemons":     256,
			"mrnet.hosts.down":       2,
		},
		Gauges: map[string]int64{
			"mrnet.tree.depth":   3,
			"mrnet.stream.depth": 17,
		},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"paradyn.sample.batch_us": h.Snapshot(),
		},
	}

	var b strings.Builder
	render(&b, "mrnet-root", prev, cur, 2*time.Second)
	out := b.String()

	for _, want := range []string{
		"tdptop — mrnet-root",
		"hosts 256 (2 down)",
		"tree depth 3",
		"samples 250/s",  // (1500-1000)/2s
		"tsamples 100/s", // (600-400)/2s
		"queue 17",
		"lost 3",
		"coalesced 12",
		"paradyn.sample.batch_us",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// The histogram row carries count and quantiles.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "batch_us") {
			if !strings.Contains(line, "100") {
				t.Errorf("hist row missing count: %q", line)
			}
		}
	}
}

func TestRenderFirstFrameNoRates(t *testing.T) {
	cur := telemetry.Snapshot{Counters: map[string]int64{"paradyn.samples.sent": 500}}
	var b strings.Builder
	// elapsed 0 = first frame: rates must render as 0, not NaN/Inf.
	render(&b, "lassd", telemetry.Snapshot{}, cur, 0)
	out := b.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("first frame rendered NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "samples 0/s") {
		t.Errorf("first frame rate not zeroed:\n%s", out)
	}
	if !strings.Contains(out, "paradyn.samples.sent") || !strings.Contains(out, "500") {
		t.Errorf("counter table missing:\n%s", out)
	}
}

func TestClip(t *testing.T) {
	if got := clip("short", 10); got != "short" {
		t.Errorf("clip(short) = %q", got)
	}
	long := "very.long.metric.name.with.many.segments"
	got := clip(long, 12)
	if !strings.HasPrefix(got, "…") || !strings.HasSuffix(got, "segments") {
		t.Errorf("clip(long) = %q", got)
	}
}

// TestRenderEmptySnapshot: a frame before any telemetry has arrived
// (fresh daemon, or STATS against a just-started tree) must still
// produce the headline with zeros — no panics on nil maps, no table
// headers for tables with no rows.
func TestRenderEmptySnapshot(t *testing.T) {
	var b strings.Builder
	render(&b, "cassd", telemetry.Snapshot{}, telemetry.Snapshot{}, time.Second)
	out := b.String()
	for _, want := range []string{"tdptop — cassd", "hosts 0 (0 down)", "tree depth 0", "samples 0/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("empty frame missing %q:\n%s", want, out)
		}
	}
	for _, header := range []string{"COUNTER", "GAUGE", "HISTOGRAM"} {
		if strings.Contains(out, header) {
			t.Errorf("empty frame rendered a %s table with no rows:\n%s", header, out)
		}
	}
}

// TestRenderPartialSnapshot: a pool mid-rampup reports some metric
// families and not others (counters but no gauges or histograms, a
// headline metric absent entirely). Only the populated tables render,
// and absent headline metrics read as zero.
func TestRenderPartialSnapshot(t *testing.T) {
	cur := telemetry.Snapshot{
		Counters: map[string]int64{"attr.puts": 12},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"attr.put.lat": {}, // registered but never observed
		},
	}
	var b strings.Builder
	render(&b, "lassd", telemetry.Snapshot{}, cur, time.Second)
	out := b.String()
	if !strings.Contains(out, "COUNTER") || !strings.Contains(out, "attr.puts") {
		t.Errorf("counter table missing:\n%s", out)
	}
	if strings.Contains(out, "GAUGE") {
		t.Errorf("gauge table rendered with no gauges:\n%s", out)
	}
	if !strings.Contains(out, "attr.put.lat") {
		t.Errorf("empty histogram row missing:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("zero-count histogram rendered NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "hosts 0 (0 down)") {
		t.Errorf("absent headline metrics not zeroed:\n%s", out)
	}
}

// TestRenderStaleSnapshot: after a daemon restart the cumulative
// counters reset, so cur can be below prev; and prev can hold streams
// cur no longer reports. Deltas go negative for one frame — that is
// honest and must render as a plain negative rate, never NaN/Inf or a
// panic, and vanished streams simply drop from the tables.
func TestRenderStaleSnapshot(t *testing.T) {
	prev := telemetry.Snapshot{
		Counters: map[string]int64{
			"paradyn.samples.sent": 100000,
			"vanished.counter":     77,
		},
	}
	cur := telemetry.Snapshot{
		Counters: map[string]int64{"paradyn.samples.sent": 40},
	}
	var b strings.Builder
	render(&b, "paradynd", prev, cur, 2*time.Second)
	out := b.String()
	if !strings.Contains(out, "samples -49980/s") {
		t.Errorf("reset counter must show its negative delta:\n%s", out)
	}
	if strings.Contains(out, "vanished.counter") {
		t.Errorf("stream gone from cur still rendered:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("stale frame rendered NaN/Inf:\n%s", out)
	}
}
