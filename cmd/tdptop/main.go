// Command tdptop renders a live, refreshing view of a tool pool's
// telemetry — the observability counterpart of top(1). It polls a
// daemon's STATS verb (by default with scope=tree, so a CASS or mrnet
// root that aggregates children reports the whole pool) and shows
// hosts, sample rates, stream queue depths, coalesce/lost counts, and
// latency quantiles, with per-second rates computed between polls.
//
// Usage:
//
//	tdptop [-server host:port] [-interval 1s] [-scope tree] [-once]
//
// -once prints a single frame and exits (scripting/CI); otherwise the
// screen refreshes in place until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"tdp/internal/attrspace"
	"tdp/internal/telemetry"
)

func main() {
	server := flag.String("server", "127.0.0.1:4500", "attribute space server to poll (CASS or any daemon answering STATS)")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	scope := flag.String("scope", "tree", `STATS scope; "tree" rolls up the daemon's children, "" is the daemon alone`)
	once := flag.Bool("once", false, "print one frame and exit")
	flag.Parse()

	c, err := attrspace.Dial(nil, *server, "default")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdptop:", err)
		os.Exit(1)
	}
	defer c.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)

	var prev telemetry.Snapshot
	last := time.Now()
	first := true
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		daemon, cur, err := c.ServerStatsScope(ctx, *scope)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdptop:", err)
			os.Exit(1)
		}
		now := time.Now()
		var elapsed time.Duration
		if !first {
			elapsed = now.Sub(last)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, daemon, prev, cur, elapsed)
		if *once {
			return
		}
		prev, last, first = cur, now, false
		select {
		case <-sig:
			return
		case <-time.After(*interval):
		}
	}
}
