package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tdp/internal/telemetry"
)

// render writes one frame of the pool view: the headline (hosts, tree
// depth, sample rate, stream-engine health) followed by counter,
// gauge, and histogram tables. prev is the previous poll's snapshot
// (zero on the first frame), elapsed the time between the two — rates
// are per-second deltas. Pure function of its inputs, so the display
// logic is testable without a server.
func render(w io.Writer, daemon string, prev, cur telemetry.Snapshot, elapsed time.Duration) {
	rate := func(name string) float64 {
		if elapsed <= 0 {
			return 0
		}
		return float64(cur.Counters[name]-prev.Counters[name]) / elapsed.Seconds()
	}

	fmt.Fprintf(w, "tdptop — %s\n", daemon)
	fmt.Fprintf(w, "hosts %d (%d down)   tree depth %d   samples %.0f/s   tsamples %.0f/s\n",
		cur.Counters["mrnet.tree.daemons"], cur.Counters["mrnet.hosts.down"],
		cur.Gauges["mrnet.tree.depth"], rate("paradyn.samples.sent"),
		rate("mrnet.stream.updates"))
	fmt.Fprintf(w, "streams: queue %d   coalesced %d (%.0f/s)   lost %d   flushes %.0f/s\n\n",
		cur.Gauges["mrnet.stream.depth"],
		cur.Counters["mrnet.stream.coalesced"], rate("mrnet.stream.coalesced"),
		cur.Counters["mrnet.stream.lost"], rate("mrnet.stream.flushes"))

	if len(cur.Counters) > 0 {
		fmt.Fprintf(w, "%-44s %14s %10s\n", "COUNTER", "VALUE", "RATE/S")
		for _, name := range sortedKeys(cur.Counters) {
			fmt.Fprintf(w, "%-44s %14d %10.0f\n", clip(name, 44), cur.Counters[name], rate(name))
		}
		fmt.Fprintln(w)
	}
	if len(cur.Gauges) > 0 {
		fmt.Fprintf(w, "%-44s %14s\n", "GAUGE", "VALUE")
		for _, name := range sortedKeys(cur.Gauges) {
			fmt.Fprintf(w, "%-44s %14d\n", clip(name, 44), cur.Gauges[name])
		}
		fmt.Fprintln(w)
	}
	if len(cur.Histograms) > 0 {
		fmt.Fprintf(w, "%-44s %10s %10s %10s\n", "HISTOGRAM", "COUNT", "P50", "P99")
		names := make([]string, 0, len(cur.Histograms))
		for name := range cur.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := cur.Histograms[name]
			fmt.Fprintf(w, "%-44s %10d %10.3g %10.3g\n",
				clip(name, 44), h.Count, h.Quantile(0.5), h.Quantile(0.99))
		}
	}
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// clip shortens a metric name from the left (the suffix is the
// discriminating part) so table columns stay aligned.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}
