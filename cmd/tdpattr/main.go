// Command tdpattr is a command-line client for a TDP attribute space
// server (a LASS or the CASS) — the condor_status of this ecosystem.
// It joins a context, performs one operation, and exits.
//
// Usage:
//
//	tdpattr -server host:port -context job-1 put pid 1234
//	tdpattr -server host:port -context job-1 get pid        # blocks
//	tdpattr -server host:port -context job-1 tryget pid
//	tdpattr -server host:port -context job-1 delete pid
//	tdpattr -server host:port -context job-1 list
//	tdpattr -server host:port -context job-1 watch          # stream events
//	tdpattr -server host:port -context job-1 hold           # pin the context
//	tdpattr -server host:port stats                         # dump server telemetry
//	tdpattr -server host:port -scope tree stats             # rolled-up subtree telemetry
//
// Contexts are reference counted (§3.2): a context is destroyed when
// its last participant exits, and each tdpattr invocation is a full
// join/exit cycle. Inspecting a live job works because its daemons
// hold the context; for standalone experiments, run `tdpattr hold` in
// the background first to pin the context, or the attributes you put
// will vanish when the command exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tdp/internal/attrspace"
)

func main() {
	server := flag.String("server", "127.0.0.1:4510", "attribute space server address")
	ctxName := flag.String("context", "default", "attribute space context")
	timeout := flag.Duration("timeout", 30*time.Second, "blocking operation timeout")
	scope := flag.String("scope", "", `stats scope: "tree" merges the daemon's children (mrnet subtree rollup)`)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := attrspace.Dial(nil, *server, *ctxName)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			usage()
		}
		if err := c.Put(args[1], args[2]); err != nil {
			fail(err)
		}
	case "get":
		if len(args) != 2 {
			usage()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		v, err := c.Get(ctx, args[1])
		if err != nil {
			fail(err)
		}
		fmt.Println(v)
	case "tryget":
		if len(args) != 2 {
			usage()
		}
		v, err := c.TryGet(args[1])
		if err != nil {
			fail(err)
		}
		fmt.Println(v)
	case "delete":
		if len(args) != 2 {
			usage()
		}
		if err := c.Delete(args[1]); err != nil {
			fail(err)
		}
	case "list":
		snap, err := c.Snapshot()
		if err != nil {
			fail(err)
		}
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s = %q\n", k, snap[k])
		}
	case "hold":
		// Keep the context reference alive until the timeout (or
		// forever with -timeout 0 ... practically, a very long time).
		d := *timeout
		if d <= 0 {
			d = 24 * time.Hour
		}
		fmt.Printf("holding context %q for %v\n", *ctxName, d)
		time.Sleep(d)
	case "stats":
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		daemon, snap, err := c.ServerStatsScope(ctx, *scope)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# daemon %s\n", daemon)
		fmt.Print(snap.Text())
	case "watch":
		if err := c.Subscribe(); err != nil {
			fail(err)
		}
		deadline := time.After(*timeout)
		for {
			select {
			case ev, ok := <-c.Events():
				if !ok {
					return
				}
				fmt.Printf("%s %s = %q (seq %d)\n", ev.Op, ev.Attr, ev.Value, ev.Seq)
			case <-deadline:
				return
			}
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tdpattr [-server addr] [-context name] put|get|tryget|delete|list|watch|stats [attr [value]]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tdpattr:", err)
	os.Exit(1)
}
